#!/usr/bin/env python3
"""Compare two benchmark reports produced by this repo's harnesses.

Usage: bench_diff.py BEFORE.json AFTER.json [--threshold PCT] [--markdown PATH]
       bench_diff.py REPORT.json --validate

Auto-detects the report kind:
  * BENCH_perf.json (bench/perf_kips): per-workload kIPS table with the
    relative change, plus aggregate and grid-speedup deltas. Exits 1 when
    any workload regresses by more than --threshold percent (default 10).
  * BENCH_fault.json (bench/fault_coverage, schema
    reese-fault-campaign-v1): per-variant coverage with Wilson bounds.
    Exits 1 when any variant's coverage drops by more than --threshold
    percentage points, or a full-coverage variant gains escapes.
  * BENCH_avf.json (bench/avf_validate, schema reese-avf-v1 kind
    "validation"): per-program Spearman rank correlation between the
    static srv-vuln ranking and measured per-PC fault outcomes. Exits 1
    when any program's rho_window drops by more than --rho-threshold
    (default 0.15, absolute), or a previously-passing program now fails.
  * BENCH_cavf.json (bench/component_avf, schema reese-cavf-v1):
    per-component detection/AVF with Wilson bounds. Exits 1 when any
    site's detection rate drops by more than --threshold percentage
    points, or a site that had zero SDC gains some.
  * BENCH_overnight.json (bench/overnight_bench, schema
    reese-overnight-v1): per-figure average IPC at paper scale. Exits 1
    when any figure/model average drops by more than --threshold percent.

--validate checks a single report's shape against its schema (currently
reese-overnight-v1) without comparing anything; exits 2 on a malformed
report. CI uses this to gate the artifact upload on well-formedness while
keeping the overnight numbers themselves non-gating.

--markdown PATH appends a GitHub-flavoured markdown rendition of the same
table to PATH (use $GITHUB_STEP_SUMMARY in CI to surface the diff on the
workflow run page, or a scratch file to post as a PR comment).

Exits 2 on malformed or mismatched input.
"""

import argparse
import json
import sys


class MarkdownSink:
    """Accumulates a markdown rendition of the diff; no-op when path is None."""

    def __init__(self, path):
        self.path = path
        self.lines = []

    def add(self, line=""):
        if self.path is not None:
            self.lines.append(line)

    def flush(self):
        if self.path is None or not self.lines:
            return
        try:
            with open(self.path, "a") as f:
                f.write("\n".join(self.lines) + "\n")
        except OSError as e:
            print(f"bench_diff: cannot write markdown to {self.path}: {e}",
                  file=sys.stderr)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pct_change(before, after):
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before


def report_kind(report):
    if not isinstance(report, dict):
        return "unknown"
    if report.get("schema") == "reese-fault-campaign-v1":
        return "fault"
    if report.get("schema") == "reese-avf-v1":
        return "avf"
    if report.get("schema") == "reese-cavf-v1":
        return "cavf"
    if report.get("schema") == "reese-overnight-v1":
        return "overnight"
    if "aggregate_kips" in report or "workloads" in report:
        return "perf"
    return "unknown"


def validate_overnight(report):
    """Returns a list of schema problems (empty when well-formed)."""
    problems = []
    if report.get("schema") != "reese-overnight-v1":
        return [f"schema is {report.get('schema')!r}, "
                f"expected 'reese-overnight-v1'"]
    if not isinstance(report.get("instructions"), int) \
            or report["instructions"] <= 0:
        problems.append("'instructions' must be a positive integer")
    if not isinstance(report.get("git_sha"), str):
        problems.append("'git_sha' must be a string (may be empty)")
    figures = report.get("figures")
    if not isinstance(figures, list) or not figures:
        return problems + ["'figures' must be a non-empty array"]
    for i, fig in enumerate(figures):
        where = f"figures[{i}]"
        if not isinstance(fig, dict):
            problems.append(f"{where} must be an object")
            continue
        name = fig.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where} needs a non-empty 'name'")
        where = f"figures[{i}] ({name})"
        workloads = fig.get("workloads")
        models = fig.get("models")
        for key, value in (("workloads", workloads), ("models", models)):
            if not isinstance(value, list) or not value \
                    or not all(isinstance(v, str) for v in value):
                problems.append(f"{where}: '{key}' must be a non-empty "
                                f"array of strings")
        for key in ("average", "overhead_pct"):
            values = fig.get(key)
            if not isinstance(values, list) \
                    or not all(isinstance(v, (int, float)) for v in values) \
                    or (isinstance(models, list) and len(values) != len(models)):
                problems.append(f"{where}: '{key}' must be numbers, one per "
                                f"model")
        ipc = fig.get("ipc")
        if not isinstance(ipc, list) \
                or (isinstance(workloads, list) and len(ipc) != len(workloads)) \
                or not all(isinstance(row, list)
                           and (not isinstance(models, list)
                                or len(row) == len(models))
                           and all(isinstance(v, (int, float)) for v in row)
                           for row in ipc):
            problems.append(f"{where}: 'ipc' must be a workloads x models "
                            f"number matrix")
        if not isinstance(fig.get("wall_seconds"), (int, float)):
            problems.append(f"{where}: 'wall_seconds' must be a number")
    return problems


def diff_overnight(before, after, threshold, md):
    before_figs = {f.get("name"): f for f in before.get("figures", [])}
    after_figs = {f.get("name"): f for f in after.get("figures", [])}

    if before.get("instructions") != after.get("instructions"):
        print(f"bench_diff: warning: overnight budgets differ "
              f"({before.get('instructions')} vs {after.get('instructions')})",
              file=sys.stderr)

    md.add("### Paper-scale figures (overnight)")
    md.add()
    md.add("| figure | model | before | after | change |")
    md.add("|---|---|---:|---:|---:|")
    print(f"{'figure':<18}{'model':<18}{'before':>9}{'after':>9}{'change':>9}")
    regressions = []
    for name in sorted(set(before_figs) | set(after_figs)):
        b = before_figs.get(name)
        a = after_figs.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<18}{'(missing in ' + side + ')':>30}")
            md.add(f"| {name} | (missing in {side}) | | | |")
            continue
        models = b.get("models", [])
        for m, model in enumerate(models):
            if m >= len(a.get("average", [])) or m >= len(b.get("average", [])):
                continue
            b_avg = b["average"][m]
            a_avg = a["average"][m]
            change = pct_change(b_avg, a_avg)
            print(f"{name:<18}{model:<18}{b_avg:>9.3f}{a_avg:>9.3f}"
                  f"{change:>+8.1f}%")
            flag = " :warning:" if change < -threshold else ""
            md.add(f"| {name} | {model} | {b_avg:.3f} | {a_avg:.3f} | "
                   f"{change:+.1f}%{flag} |")
            if change < -threshold:
                regressions.append((f"{name}/{model}", change))

    for name, change in regressions:
        print(f"bench_diff: REGRESSION {name}: {change:+.1f}% "
              f"(threshold -{threshold}%)", file=sys.stderr)
    md.add()
    if regressions:
        md.add(f"**{len(regressions)} regression(s)** beyond the "
               f"-{threshold}% threshold.")
    else:
        md.add(f"No regressions beyond the -{threshold}% threshold.")
    return 1 if regressions else 0


def diff_perf(before, after, threshold, md):
    before_kips = {w["workload"]: w["median_kips"]
                   for w in before.get("workloads", [])}
    after_kips = {w["workload"]: w["median_kips"]
                  for w in after.get("workloads", [])}

    if before.get("instructions") != after.get("instructions"):
        print(f"bench_diff: warning: instruction budgets differ "
              f"({before.get('instructions')} vs {after.get('instructions')}); "
              f"kIPS are still comparable but cache behaviour may not be",
              file=sys.stderr)

    b_sha = before.get("git_sha", "")
    a_sha = after.get("git_sha", "")
    if b_sha or a_sha:
        print(f"baseline @ {b_sha or '(unanchored)'} -> "
              f"after @ {a_sha or '(unanchored)'}")

    md.add("### Simulator throughput (perf_kips)")
    md.add()
    if b_sha or a_sha:
        md.add(f"Baseline commit: `{b_sha or '(unanchored)'}` → "
               f"`{a_sha or '(unanchored)'}`")
        md.add()
    md.add("| workload | before (kIPS) | after (kIPS) | change |")
    md.add("|---|---:|---:|---:|")
    print(f"{'workload':<12}{'before':>12}{'after':>12}{'change':>10}")
    regressions = []
    for name in sorted(set(before_kips) | set(after_kips)):
        b = before_kips.get(name)
        a = after_kips.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<12}{'(missing in ' + side + ')':>34}")
            md.add(f"| {name} | (missing in {side}) | | |")
            continue
        change = pct_change(b, a)
        print(f"{name:<12}{b:>12.1f}{a:>12.1f}{change:>+9.1f}%")
        flag = " :warning:" if change < -threshold else ""
        md.add(f"| {name} | {b:.1f} | {a:.1f} | {change:+.1f}%{flag} |")
        if change < -threshold:
            regressions.append((name, change))

    b_agg = before.get("aggregate_kips", 0.0)
    a_agg = after.get("aggregate_kips", 0.0)
    print(f"{'aggregate':<12}{b_agg:>12.1f}{a_agg:>12.1f}"
          f"{pct_change(b_agg, a_agg):>+9.1f}%")
    md.add(f"| **aggregate** | {b_agg:.1f} | {a_agg:.1f} | "
           f"{pct_change(b_agg, a_agg):+.1f}% |")

    b_grid = before.get("grid", {})
    a_grid = after.get("grid", {})
    if b_grid and a_grid:
        print(f"grid speedup {b_grid.get('speedup', 0):.2f}x "
              f"({b_grid.get('jobs', '?')} jobs) -> "
              f"{a_grid.get('speedup', 0):.2f}x "
              f"({a_grid.get('jobs', '?')} jobs)")
        md.add()
        md.add(f"Grid speedup: {b_grid.get('speedup', 0):.2f}x "
               f"({b_grid.get('jobs', '?')} jobs) → "
               f"{a_grid.get('speedup', 0):.2f}x "
               f"({a_grid.get('jobs', '?')} jobs)")

    for name, change in regressions:
        print(f"bench_diff: REGRESSION {name}: {change:+.1f}% "
              f"(threshold -{threshold}%)", file=sys.stderr)
    md.add()
    if regressions:
        md.add(f"**{len(regressions)} regression(s)** beyond the "
               f"-{threshold}% threshold.")
    else:
        md.add(f"No regressions beyond the -{threshold}% threshold.")
    return 1 if regressions else 0


def diff_fault(before, after, threshold, md):
    before_variants = {v["label"]: v for v in before.get("variants", [])}
    after_variants = {v["label"]: v for v in after.get("variants", [])}

    for key in ("instructions", "replicas", "rate", "seed"):
        if before.get(key) != after.get(key):
            print(f"bench_diff: warning: campaign {key} differs "
                  f"({before.get(key)} vs {after.get(key)}); coverage is "
                  f"still comparable but injection streams are not",
                  file=sys.stderr)

    print(f"total injections {before.get('total_injections', 0)} -> "
          f"{after.get('total_injections', 0)}")
    md.add("### Fault-injection coverage (fault_coverage)")
    md.add()
    md.add(f"Total injections: {before.get('total_injections', 0)} → "
           f"{after.get('total_injections', 0)}")
    md.add()
    md.add("| variant | cov before | cov after | change | wilson lo "
           "| escapes |")
    md.add("|---|---:|---:|---:|---:|---:|")
    print(f"{'variant':<16}{'cov before':>12}{'cov after':>12}{'change':>9}"
          f"{'wilson lo':>11}{'escapes':>9}")
    regressions = []
    for name in sorted(set(before_variants) | set(after_variants)):
        b = before_variants.get(name)
        a = after_variants.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<16}{'(missing in ' + side + ')':>33}")
            md.add(f"| {name} | (missing in {side}) | | | | |")
            continue
        b_cov = 100.0 * b.get("coverage", 0.0)
        a_cov = 100.0 * a.get("coverage", 0.0)
        delta = a_cov - b_cov
        print(f"{name:<16}{b_cov:>11.3f}%{a_cov:>11.3f}%{delta:>+8.3f}%"
              f"{100.0 * a.get('wilson_lower', 0.0):>10.3f}%"
              f"{a.get('undetected', 0):>9}")
        flag = ""
        if delta < -threshold:
            regressions.append((name, f"coverage {delta:+.3f}pp "
                                      f"(threshold -{threshold}pp)"))
            flag = " :warning:"
        if (a.get("expect_full_coverage") and a.get("undetected", 0) > 0
                and b.get("undetected", 0) == 0):
            regressions.append((name, f"{a['undetected']} new escapes in a "
                                      f"full-coverage variant"))
            flag = " :warning:"
        md.add(f"| {name} | {b_cov:.3f}% | {a_cov:.3f}% | {delta:+.3f}%{flag} "
               f"| {100.0 * a.get('wilson_lower', 0.0):.3f}% "
               f"| {a.get('undetected', 0)} |")

    for name, why in regressions:
        print(f"bench_diff: REGRESSION {name}: {why}", file=sys.stderr)
    md.add()
    if regressions:
        md.add(f"**{len(regressions)} regression(s)**: "
               + "; ".join(f"{name} — {why}" for name, why in regressions))
    else:
        md.add(f"No coverage regressions beyond the -{threshold}pp threshold.")
    return 1 if regressions else 0


def diff_avf(before, after, rho_threshold, md):
    before_programs = {p["name"]: p for p in before.get("programs", [])}
    after_programs = {p["name"]: p for p in after.get("programs", [])}

    for key in ("replicas", "rate", "seed", "min_rho"):
        if before.get(key) != after.get(key):
            print(f"bench_diff: warning: validation {key} differs "
                  f"({before.get(key)} vs {after.get(key)}); correlations "
                  f"are still comparable but not the same experiment",
                  file=sys.stderr)

    md.add("### AVF cross-validation (avf_validate)")
    md.add()
    md.add("| program | rho before | rho after | change | injected | pass |")
    md.add("|---|---:|---:|---:|---:|---|")
    print(f"{'program':<14}{'rho before':>12}{'rho after':>12}{'change':>9}"
          f"{'injected':>10}{'pass':>6}")
    regressions = []
    for name in sorted(set(before_programs) | set(after_programs)):
        b = before_programs.get(name)
        a = after_programs.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<14}{'(missing in ' + side + ')':>33}")
            md.add(f"| {name} | (missing in {side}) | | | | |")
            continue
        b_rho = b.get("rho_window", 0.0)
        a_rho = a.get("rho_window", 0.0)
        delta = a_rho - b_rho
        verdict = "yes" if a.get("pass") else "NO"
        print(f"{name:<14}{b_rho:>+12.3f}{a_rho:>+12.3f}{delta:>+9.3f}"
              f"{a.get('injected', 0):>10}{verdict:>6}")
        flag = ""
        if delta < -rho_threshold:
            regressions.append((name, f"rho_window {delta:+.3f} "
                                      f"(threshold -{rho_threshold})"))
            flag = " :warning:"
        if b.get("pass") and not a.get("pass"):
            regressions.append((name, "was passing, now below min_rho"))
            flag = " :warning:"
        md.add(f"| {name} | {b_rho:+.3f} | {a_rho:+.3f} | {delta:+.3f}{flag} "
               f"| {a.get('injected', 0)} | {verdict} |")

    for name, why in regressions:
        print(f"bench_diff: REGRESSION {name}: {why}", file=sys.stderr)
    md.add()
    if regressions:
        md.add(f"**{len(regressions)} regression(s)**: "
               + "; ".join(f"{name} — {why}" for name, why in regressions))
    else:
        md.add(f"No rank-correlation regressions beyond the "
               f"-{rho_threshold} threshold.")
    return 1 if regressions else 0


def diff_cavf(before, after, threshold, md):
    before_sites = {s["label"]: s for s in before.get("sites", [])}
    after_sites = {s["label"]: s for s in after.get("sites", [])}

    for key in ("instructions", "replicas", "rate", "seed"):
        if before.get(key) != after.get(key):
            print(f"bench_diff: warning: campaign {key} differs "
                  f"({before.get(key)} vs {after.get(key)}); rates are "
                  f"still comparable but strike streams are not",
                  file=sys.stderr)

    md.add("### Per-component AVF (component_avf)")
    md.add()
    md.add("| site | det before | det after | change | sdc | cov loss |")
    md.add("|---|---:|---:|---:|---:|---:|")
    print(f"{'site':<20}{'det before':>12}{'det after':>12}{'change':>9}"
          f"{'sdc':>7}{'cov loss':>10}")
    regressions = []
    for name in sorted(set(before_sites) | set(after_sites)):
        b = before_sites.get(name)
        a = after_sites.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<20}{'(missing in ' + side + ')':>33}")
            md.add(f"| {name} | (missing in {side}) | | | | |")
            continue
        b_det = 100.0 * b.get("detection", 0.0)
        a_det = 100.0 * a.get("detection", 0.0)
        delta = a_det - b_det
        print(f"{name:<20}{b_det:>11.3f}%{a_det:>11.3f}%{delta:>+8.3f}%"
              f"{a.get('sdc', 0):>7}{a.get('coverage_loss', 0):>10}")
        flag = ""
        if delta < -threshold:
            regressions.append((name, f"detection {delta:+.3f}pp "
                                      f"(threshold -{threshold}pp)"))
            flag = " :warning:"
        if b.get("sdc", 0) == 0 and a.get("sdc", 0) > 0:
            regressions.append((name, f"{a['sdc']} new SDC outcomes in a "
                                      f"previously SDC-free site"))
            flag = " :warning:"
        md.add(f"| {name} | {b_det:.3f}% | {a_det:.3f}% | {delta:+.3f}%{flag} "
               f"| {a.get('sdc', 0)} | {a.get('coverage_loss', 0)} |")

    for name, why in regressions:
        print(f"bench_diff: REGRESSION {name}: {why}", file=sys.stderr)
    md.add()
    if regressions:
        md.add(f"**{len(regressions)} regression(s)**: "
               + "; ".join(f"{name} — {why}" for name, why in regressions))
    else:
        md.add(f"No detection regressions beyond the -{threshold}pp "
               f"threshold.")
    return 1 if regressions else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after", nargs="?")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check a single report instead of "
                             "diffing two (currently reese-overnight-v1)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold: percent kIPS drop (perf) "
                             "or coverage percentage points (fault); "
                             "default 10")
    parser.add_argument("--rho-threshold", type=float, default=0.15,
                        help="regression threshold for avf reports: absolute "
                             "Spearman rho_window drop; default 0.15")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="append a markdown rendition of the diff to "
                             "PATH (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    before = load(args.before)

    if args.validate:
        kind = report_kind(before)
        if kind != "overnight":
            print(f"bench_diff: --validate supports reese-overnight-v1 "
                  f"reports, got kind {kind}", file=sys.stderr)
            sys.exit(2)
        problems = validate_overnight(before)
        for problem in problems:
            print(f"bench_diff: {args.before}: {problem}", file=sys.stderr)
        if problems:
            sys.exit(2)
        print(f"bench_diff: {args.before}: valid reese-overnight-v1 "
              f"({len(before['figures'])} figures, "
              f"{before['instructions']} instructions/cell)")
        sys.exit(0)

    if args.after is None:
        print("bench_diff: AFTER.json required unless --validate",
              file=sys.stderr)
        sys.exit(2)
    after = load(args.after)

    kinds = (report_kind(before), report_kind(after))
    if kinds[0] != kinds[1] or kinds[0] == "unknown":
        print(f"bench_diff: cannot compare report kinds {kinds[0]} vs "
              f"{kinds[1]}", file=sys.stderr)
        sys.exit(2)

    md = MarkdownSink(args.markdown)
    if kinds[0] == "fault":
        status = diff_fault(before, after, args.threshold, md)
    elif kinds[0] == "avf":
        status = diff_avf(before, after, args.rho_threshold, md)
    elif kinds[0] == "cavf":
        status = diff_cavf(before, after, args.threshold, md)
    elif kinds[0] == "overnight":
        status = diff_overnight(before, after, args.threshold, md)
    else:
        status = diff_perf(before, after, args.threshold, md)
    md.flush()
    sys.exit(status)


if __name__ == "__main__":
    main()

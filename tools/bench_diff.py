#!/usr/bin/env python3
"""Compare two benchmark reports produced by this repo's harnesses.

Usage: bench_diff.py BEFORE.json AFTER.json [--threshold PCT]

Auto-detects the report kind:
  * BENCH_perf.json (bench/perf_kips): per-workload kIPS table with the
    relative change, plus aggregate and grid-speedup deltas. Exits 1 when
    any workload regresses by more than --threshold percent (default 10).
  * BENCH_fault.json (bench/fault_coverage, schema
    reese-fault-campaign-v1): per-variant coverage with Wilson bounds.
    Exits 1 when any variant's coverage drops by more than --threshold
    percentage points, or a full-coverage variant gains escapes.

Exits 2 on malformed or mismatched input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pct_change(before, after):
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before


def report_kind(report):
    if not isinstance(report, dict):
        return "unknown"
    if report.get("schema") == "reese-fault-campaign-v1":
        return "fault"
    if "aggregate_kips" in report or "workloads" in report:
        return "perf"
    return "unknown"


def diff_perf(before, after, threshold):
    before_kips = {w["workload"]: w["median_kips"]
                   for w in before.get("workloads", [])}
    after_kips = {w["workload"]: w["median_kips"]
                  for w in after.get("workloads", [])}

    if before.get("instructions") != after.get("instructions"):
        print(f"bench_diff: warning: instruction budgets differ "
              f"({before.get('instructions')} vs {after.get('instructions')}); "
              f"kIPS are still comparable but cache behaviour may not be",
              file=sys.stderr)

    print(f"{'workload':<12}{'before':>12}{'after':>12}{'change':>10}")
    regressions = []
    for name in sorted(set(before_kips) | set(after_kips)):
        b = before_kips.get(name)
        a = after_kips.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<12}{'(missing in ' + side + ')':>34}")
            continue
        change = pct_change(b, a)
        print(f"{name:<12}{b:>12.1f}{a:>12.1f}{change:>+9.1f}%")
        if change < -threshold:
            regressions.append((name, change))

    b_agg = before.get("aggregate_kips", 0.0)
    a_agg = after.get("aggregate_kips", 0.0)
    print(f"{'aggregate':<12}{b_agg:>12.1f}{a_agg:>12.1f}"
          f"{pct_change(b_agg, a_agg):>+9.1f}%")

    b_grid = before.get("grid", {})
    a_grid = after.get("grid", {})
    if b_grid and a_grid:
        print(f"grid speedup {b_grid.get('speedup', 0):.2f}x "
              f"({b_grid.get('jobs', '?')} jobs) -> "
              f"{a_grid.get('speedup', 0):.2f}x "
              f"({a_grid.get('jobs', '?')} jobs)")

    for name, change in regressions:
        print(f"bench_diff: REGRESSION {name}: {change:+.1f}% "
              f"(threshold -{threshold}%)", file=sys.stderr)
    return 1 if regressions else 0


def diff_fault(before, after, threshold):
    before_variants = {v["label"]: v for v in before.get("variants", [])}
    after_variants = {v["label"]: v for v in after.get("variants", [])}

    for key in ("instructions", "replicas", "rate", "seed"):
        if before.get(key) != after.get(key):
            print(f"bench_diff: warning: campaign {key} differs "
                  f"({before.get(key)} vs {after.get(key)}); coverage is "
                  f"still comparable but injection streams are not",
                  file=sys.stderr)

    print(f"total injections {before.get('total_injections', 0)} -> "
          f"{after.get('total_injections', 0)}")
    print(f"{'variant':<16}{'cov before':>12}{'cov after':>12}{'change':>9}"
          f"{'wilson lo':>11}{'escapes':>9}")
    regressions = []
    for name in sorted(set(before_variants) | set(after_variants)):
        b = before_variants.get(name)
        a = after_variants.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<16}{'(missing in ' + side + ')':>33}")
            continue
        b_cov = 100.0 * b.get("coverage", 0.0)
        a_cov = 100.0 * a.get("coverage", 0.0)
        delta = a_cov - b_cov
        print(f"{name:<16}{b_cov:>11.3f}%{a_cov:>11.3f}%{delta:>+8.3f}%"
              f"{100.0 * a.get('wilson_lower', 0.0):>10.3f}%"
              f"{a.get('undetected', 0):>9}")
        if delta < -threshold:
            regressions.append((name, f"coverage {delta:+.3f}pp "
                                      f"(threshold -{threshold}pp)"))
        if (a.get("expect_full_coverage") and a.get("undetected", 0) > 0
                and b.get("undetected", 0) == 0):
            regressions.append((name, f"{a['undetected']} new escapes in a "
                                      f"full-coverage variant"))

    for name, why in regressions:
        print(f"bench_diff: REGRESSION {name}: {why}", file=sys.stderr)
    return 1 if regressions else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold: percent kIPS drop (perf) "
                             "or coverage percentage points (fault); "
                             "default 10")
    args = parser.parse_args()

    before = load(args.before)
    after = load(args.after)

    kinds = (report_kind(before), report_kind(after))
    if kinds[0] != kinds[1] or kinds[0] == "unknown":
        print(f"bench_diff: cannot compare report kinds {kinds[0]} vs "
              f"{kinds[1]}", file=sys.stderr)
        sys.exit(2)

    if kinds[0] == "fault":
        sys.exit(diff_fault(before, after, args.threshold))
    sys.exit(diff_perf(before, after, args.threshold))


if __name__ == "__main__":
    main()

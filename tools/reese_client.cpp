// reese_client: command-line client for reesed (tools/reesed.cpp).
//
// Submit an experiment or campaign spec, poll a job to completion, fetch
// its result — without hand-writing HTTP. Exit status 0 only when the
// server answered the command with a 2xx.
//
// Usage: reese_client [--host ADDR] [--port N] [--token TOK] [--retries N]
//                     [--retry-backoff-ms MS] <command> [args]
//
//   --token TOK             send "Authorization: Bearer TOK" on every
//                           request (daemons started with --auth-token)
//   --retries N             retry transport failures and 429 backpressure
//                           up to N times with exponential backoff +
//                           jitter (default 0: fail fast, exact call
//                           counts for tests)
//   --retry-backoff-ms MS   first retry delay (default 100, doubling up
//                           to 2000)
//
//   health                          GET /v1/healthz
//   stats                           GET /v1/stats
//   submit-experiment SPEC.json     POST /v1/experiments; prints the job id
//   submit-campaign SPEC.json       POST /v1/campaigns; prints the job id
//   status ID                       GET /v1/jobs/ID
//   progress ID                     GET /v1/jobs/ID/progress — live cells
//                                   done/total, committed instructions, kIPS
//   wait ID [--poll-ms N]           poll status until the job leaves
//                                   queued/running; prints the final state
//   result ID [--csv|--cells]       GET /v1/jobs/ID/result (?format=csv or
//                                   ?format=cells — the binary per-cell
//                                   campaign matrix the coordinator merges)
//   metrics                         GET /v1/metrics (Prometheus text)
//   fleet-metrics                   GET /v1/fleet/metrics — the
//                                   coordinator's federated view of every
//                                   worker's metrics, one "worker" label
//                                   per daemon (DESIGN.md §17)
//
// SPEC.json may be "-" to read the spec from stdin. `wait` exits 0 for
// state "done", 3 for "timeout", 4 for "failed". `result` on a job that
// timed out surfaces the server's 408; a job pruned by the daemon's
// retention window surfaces its 410. With --retries, `wait` rides out a
// daemon restart between polls instead of failing on the first refused
// connect.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/http.h"
#include "common/json.h"

using namespace reese;

namespace {

bool read_spec(const char* path, std::string* out) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "reese_client: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Pull a field out of a service JSON response; empty string when absent.
std::string response_field(const std::string& body, const char* key) {
  Result<json::Value> parsed = json::parse_json(body);
  if (!parsed.ok() || !parsed.value().is_object()) return "";
  const json::Value* value = parsed.value().find(key);
  if (value == nullptr) return "";
  if (value->is_string()) return value->string;
  if (value->is_number() && value->is_integer) {
    return std::to_string(value->uint_value);
  }
  return "";
}

int fail_transport(const http::Response& response) {
  std::fprintf(stderr, "reese_client: %s\n", response.body.c_str());
  return 1;
}

/// Body to stdout, binary-safe (?format=cells is an octet stream).
void print_body(const http::Response& response) {
  std::fwrite(response.body.data(), 1, response.body.size(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 8642;
  http::RequestOptions options;

  int i = 1;
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "reese_client: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--host") == 0) {
      host = next_value();
    } else if (std::strcmp(arg, "--port") == 0) {
      port = std::atoi(next_value());
    } else if (std::strcmp(arg, "--token") == 0) {
      options.headers.push_back(
          {"Authorization", std::string("Bearer ") + next_value()});
    } else if (std::strcmp(arg, "--retries") == 0) {
      options.max_retries = std::atoi(next_value());
      if (options.max_retries < 0) options.max_retries = 0;
    } else if (std::strcmp(arg, "--retry-backoff-ms") == 0) {
      options.backoff_ms = std::atof(next_value());
      if (options.backoff_ms < 1.0) options.backoff_ms = 1.0;
    } else {
      break;  // first non-flag argument is the command
    }
  }
  if (i >= argc || port < 1 || port > 65535) {
    std::fprintf(stderr,
                 "usage: reese_client [--host ADDR] [--port N] [--token TOK] "
                 "[--retries N] [--retry-backoff-ms MS] "
                 "health|stats|metrics|fleet-metrics|submit-experiment|"
                 "submit-campaign|status|progress|wait|result ...\n");
    return 2;
  }
  const std::string command = argv[i++];
  const u16 port16 = static_cast<u16>(port);

  if (command == "health" || command == "stats" || command == "metrics" ||
      command == "fleet-metrics") {
    const std::string path = command == "health"  ? "/v1/healthz"
                             : command == "stats" ? "/v1/stats"
                             : command == "fleet-metrics"
                                 ? "/v1/fleet/metrics"
                                 : "/v1/metrics";
    const http::Response response =
        http::request(host, port16, "GET", path, "", options);
    if (response.status == 0) return fail_transport(response);
    print_body(response);
    return response.status == 200 ? 0 : 1;
  }

  if (command == "submit-experiment" || command == "submit-campaign") {
    if (i >= argc) {
      std::fprintf(stderr, "reese_client: %s needs a spec file (or -)\n",
                   command.c_str());
      return 2;
    }
    std::string spec;
    if (!read_spec(argv[i], &spec)) return 1;
    const std::string path = command == "submit-experiment"
                                 ? "/v1/experiments"
                                 : "/v1/campaigns";
    const http::Response response =
        http::request(host, port16, "POST", path, spec, options);
    if (response.status == 0) return fail_transport(response);
    if (response.status != 202) {
      std::fprintf(stderr, "reese_client: submit failed (%d): %s",
                   response.status, response.body.c_str());
      return 1;
    }
    // Print just the id: the natural thing to capture in a shell variable.
    std::printf("%s\n", response_field(response.body, "id").c_str());
    return 0;
  }

  if (command == "status" || command == "progress" || command == "wait" ||
      command == "result") {
    if (i >= argc) {
      std::fprintf(stderr, "reese_client: %s needs a job id\n",
                   command.c_str());
      return 2;
    }
    const std::string id = argv[i++];

    if (command == "status" || command == "progress") {
      const std::string path = "/v1/jobs/" + id +
                               (command == "progress" ? "/progress" : "");
      const http::Response response =
          http::request(host, port16, "GET", path, "", options);
      if (response.status == 0) return fail_transport(response);
      print_body(response);
      return response.status == 200 ? 0 : 1;
    }

    if (command == "wait") {
      int poll_ms = 50;
      if (i < argc && std::strcmp(argv[i], "--poll-ms") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "reese_client: --poll-ms needs a value\n");
          return 2;
        }
        poll_ms = std::atoi(argv[i + 1]);
        if (poll_ms < 1) poll_ms = 1;
      }
      for (;;) {
        const http::Response response =
            http::request(host, port16, "GET", "/v1/jobs/" + id, "", options);
        if (response.status == 0) return fail_transport(response);
        if (response.status != 200) {
          std::fprintf(stderr, "reese_client: status %d: %s",
                       response.status, response.body.c_str());
          return 1;
        }
        const std::string state = response_field(response.body, "state");
        if (state != "queued" && state != "running") {
          std::printf("%s\n", state.c_str());
          if (state == "done") return 0;
          if (state == "timeout") return 3;
          return 4;
        }
        ::usleep(static_cast<useconds_t>(poll_ms) * 1000);
      }
    }

    // result
    std::string path = "/v1/jobs/" + id + "/result";
    if (i < argc && std::strcmp(argv[i], "--csv") == 0) {
      path += "?format=csv";
    } else if (i < argc && std::strcmp(argv[i], "--cells") == 0) {
      path += "?format=cells";
    }
    const http::Response response =
        http::request(host, port16, "GET", path, "", options);
    if (response.status == 0) return fail_transport(response);
    if (response.status != 200) {
      std::fprintf(stderr, "reese_client: status %d: %s", response.status,
                   response.body.c_str());
      return 1;
    }
    print_body(response);
    return 0;
  }

  std::fprintf(stderr, "reese_client: unknown command %s\n", command.c_str());
  return 2;
}

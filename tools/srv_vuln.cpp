// srv-vuln: static AVF/vulnerability analyzer for SRV assembly programs.
//
//   $ ./build/tools/srv-vuln examples/srv/sieve.srv
//   $ ./build/tools/srv-vuln --format=json examples/srv/gcd.srv
//   $ ./build/tools/srv-vuln --top=10 examples/asm/fib.s
//
// Assembles each input file and runs the srv-vuln pass family (liveness
// window + demanded bits + loop-frequency ranking, see
// src/analysis/vuln.h) over the decoded image. Flags:
//   --format=text|json      output format (default text)
//   --top=N                 text mode: show only the N highest-ranked
//                           instructions (default 0 = all)
//
// Exit status: 0 = analyzed, 1 = a file failed to assemble, 2 = usage
// error. The JSON output is one reese-avf-v1 "static" document per file.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/vuln.h"
#include "common/flags.h"
#include "isa/assembler.h"

using namespace reese;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: srv-vuln [--format=text|json] [--top=N]\n"
               "                file.srv [file2.srv ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (auto parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return usage();
  }
  if (flags.positional().empty()) return usage();

  const std::string format = flags.get_string("format", "text");
  if (format != "text" && format != "json") return usage();
  const i64 top = flags.get_i64("top", 0);
  if (top < 0) return usage();

  bool failed = false;
  for (const std::string& path : flags.positional()) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "srv-vuln: cannot open %s\n", path.c_str());
      failed = true;
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto assembled = isa::assemble(buffer.str());
    if (!assembled.ok()) {
      std::fprintf(stderr, "srv-vuln: %s: line %d: %s\n", path.c_str(),
                   assembled.error().line,
                   assembled.error().message.c_str());
      failed = true;
      continue;
    }
    const analysis::VulnReport report =
        analysis::analyze_vulnerability(assembled.value());
    const std::string rendered =
        format == "json" ? report.json(path)
                         : report.table(path, static_cast<usize>(top));
    std::fputs(rendered.c_str(), stdout);
  }
  return failed ? 1 : 0;
}

#!/usr/bin/env bash
# Fleet smoke: prove the coordinator contract end to end with real
# processes (DESIGN.md §15, §17). A campaign fanned across two worker
# reesed daemons — one of which is SIGKILLed mid-run — must:
#   * complete and render json + csv byte-identical to a single-node run;
#   * narrate the death as a structured log event ("kind": "worker_dead")
#     in the coordinator's --log-file;
#   * emit a fleet timeline (--fleet-trace-out) that passes
#     tools/trace_check.py;
#   * keep the per-shard progress rollup monotonic while shards re-dispatch;
#   * answer /v1/fleet/metrics with a deterministic federated export.
#
# Usage: tools/fleet_smoke.sh [BUILD_DIR]   (default: build)
#
# Exits non-zero on any divergence. CI runs this as the gating
# `fleet-smoke` job and uploads BUILD_DIR/fleet-smoke-artifacts (logs,
# trace, metrics, progress samples); it also works locally after a normal
# build.
set -euo pipefail

BUILD_DIR=${1:-build}
REESED="$BUILD_DIR/tools/reesed"
CLIENT="$BUILD_DIR/tools/reese_client"
for bin in "$REESED" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "fleet_smoke: missing $bin (build first)"; exit 1; }
done

WORK=$(mktemp -d)
ARTIFACTS="$BUILD_DIR/fleet-smoke-artifacts"
PIDS=()
cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  # Keep the observability artifacts (CI uploads them) even on failure.
  mkdir -p "$ARTIFACTS"
  cp "$WORK"/*.log "$WORK"/*.err "$WORK"/fleet_trace.json \
     "$WORK"/fleet_metrics*.txt "$WORK"/progress_samples.jsonl \
     "$ARTIFACTS"/ 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Start a reesed; sets DAEMON_PORT and DAEMON_PID (no subshell — the pid
# must land in PIDS for cleanup). $1 = log prefix, rest = extra flags.
start_daemon() {
  local prefix=$1; shift
  "$REESED" --port 0 --log-file "$WORK/$prefix.log" "$@" \
      > "$WORK/$prefix.out" 2> "$WORK/$prefix.err" &
  DAEMON_PID=$!
  PIDS+=("$DAEMON_PID")
  DAEMON_PORT=""
  for _ in $(seq 100); do
    DAEMON_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)/\1/p' \
                  "$WORK/$prefix.out")
    [[ -n "$DAEMON_PORT" ]] && return
    sleep 0.1
  done
  echo "fleet_smoke: $prefix never printed its port" >&2
  exit 1
}

cat > "$WORK/spec.json" <<'SPEC'
{"workloads": ["gcc", "li"], "variants": ["baseline", "reese_either"],
 "replicas": 12, "instructions": 200000, "seed": 20260808}
SPEC

echo "== single-node reference"
start_daemon single --workers 2
REF_PORT=$DAEMON_PORT
id=$("$CLIENT" --port "$REF_PORT" submit-campaign "$WORK/spec.json")
"$CLIENT" --port "$REF_PORT" wait "$id" --poll-ms 50
"$CLIENT" --port "$REF_PORT" result "$id" > "$WORK/single.json"
"$CLIENT" --port "$REF_PORT" result "$id" --csv > "$WORK/single.csv"

echo "== fleet: coordinator + 2 workers, one SIGKILLed mid-run"
start_daemon worker1 --workers 2
W1_PORT=$DAEMON_PORT W1_PID=$DAEMON_PID
start_daemon worker2 --workers 2
W2_PORT=$DAEMON_PORT
start_daemon coordinator --coordinator \
    --worker "127.0.0.1:$W1_PORT" --worker "127.0.0.1:$W2_PORT" \
    --shards-per-worker 3 \
    --fleet-trace-out "$WORK/fleet_trace.json"
CO_PORT=$DAEMON_PORT

id=$("$CLIENT" --port "$CO_PORT" submit-campaign "$WORK/spec.json")

# Sample the per-shard progress rollup while the campaign runs; the
# monotonicity check below proves re-dispatch never drags it backwards.
( while "$CLIENT" --port "$CO_PORT" progress "$id" \
        >> "$WORK/progress_samples.jsonl" 2>/dev/null; do
    sleep 0.1
  done ) &
SAMPLER_PID=$!
PIDS+=("$SAMPLER_PID")

sleep 0.3
kill -9 "$W1_PID"
echo "   killed worker 1 (pid $W1_PID) mid-campaign"

# Federated metrics answer mid-campaign, not just at rest.
"$CLIENT" --port "$CO_PORT" fleet-metrics > "$WORK/fleet_metrics_midrun.txt"
grep -q "^reese_fleet_worker_up" "$WORK/fleet_metrics_midrun.txt" || {
  echo "fleet_smoke: mid-run federation lacks worker_up gauges" >&2; exit 1; }

state=$("$CLIENT" --port "$CO_PORT" wait "$id" --poll-ms 50)
[[ "$state" == "done" ]] || {
  echo "fleet_smoke: campaign ended in state $state" >&2
  cat "$WORK/coordinator.log" >&2
  exit 1
}
kill "$SAMPLER_PID" 2>/dev/null || true
"$CLIENT" --port "$CO_PORT" result "$id" > "$WORK/fleet.json"
"$CLIENT" --port "$CO_PORT" result "$id" --csv > "$WORK/fleet.csv"

echo "== structured log: the death is an event, not prose"
if grep -q '"kind": "worker_dead"' "$WORK/coordinator.log"; then
  grep -q '"kind": "shard_redispatch"\|"kind": "worker_dead"' \
    "$WORK/coordinator.log"
else
  echo "   note: worker died between shards (no re-dispatch needed)"
fi
# Lifecycle events always present, and no stderr narration remains.
for kind in campaign_start shard_dispatch shard_merged campaign_done; do
  grep -q "\"kind\": \"$kind\"" "$WORK/coordinator.log" || {
    echo "fleet_smoke: coordinator.log lacks $kind event" >&2; exit 1; }
done
[[ ! -s "$WORK/coordinator.err" ]] || {
  echo "fleet_smoke: coordinator wrote to stderr:" >&2
  cat "$WORK/coordinator.err" >&2; exit 1; }

echo "== fleet timeline validates"
python3 tools/trace_check.py "$WORK/fleet_trace.json"

echo "== progress rollup is monotonic"
python3 - "$WORK/progress_samples.jsonl" <<'PY'
import json, sys
last = -1
samples = 0
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        continue  # sampler raced daemon shutdown; partial line
    samples += 1
    done = doc.get("cells_done", 0)
    if done < last:
        sys.exit(f"progress went backwards: {done} after {last}")
    last = done
    for shard in doc.get("shards", []):
        if shard["state"] not in ("queued", "dispatched", "running",
                                  "re-dispatched", "merged"):
            sys.exit(f"unknown shard state {shard['state']!r}")
print(f"   {samples} samples, cells_done peaked at {last}")
PY

echo "== federated metrics are deterministic at rest"
"$CLIENT" --port "$CO_PORT" fleet-metrics > "$WORK/fleet_metrics_a.txt"
"$CLIENT" --port "$CO_PORT" fleet-metrics > "$WORK/fleet_metrics_b.txt"
cmp "$WORK/fleet_metrics_a.txt" "$WORK/fleet_metrics_b.txt" || {
  echo "fleet_smoke: back-to-back federated scrapes diverged" >&2; exit 1; }
grep -q "reese_fleet_worker_up{worker=\"127.0.0.1:$W1_PORT\"} 0" \
  "$WORK/fleet_metrics_a.txt" || {
  echo "fleet_smoke: dead worker not reported down in federation" >&2
  exit 1; }
grep -q "worker=\"127.0.0.1:$W2_PORT\"" "$WORK/fleet_metrics_a.txt" || {
  echo "fleet_smoke: surviving worker missing from federation" >&2; exit 1; }

cmp "$WORK/fleet.json" "$WORK/single.json" || {
  echo "fleet_smoke: json diverged from the single-node run" >&2; exit 1; }
cmp "$WORK/fleet.csv" "$WORK/single.csv" || {
  echo "fleet_smoke: csv diverged from the single-node run" >&2; exit 1; }
echo "== ok: fleet output byte-identical to single node ($(wc -c < "$WORK/fleet.json") bytes json)"

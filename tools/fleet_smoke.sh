#!/usr/bin/env bash
# Fleet smoke: prove the coordinator contract end to end with real
# processes (DESIGN.md §15). A campaign fanned across two worker reesed
# daemons — one of which is SIGKILLed mid-run — must complete and render
# json + csv byte-identical to a single-node run of the same spec.
#
# Usage: tools/fleet_smoke.sh [BUILD_DIR]   (default: build)
#
# Exits non-zero on any divergence. CI runs this as the gating
# `fleet-smoke` job; it also works locally after a normal build.
set -euo pipefail

BUILD_DIR=${1:-build}
REESED="$BUILD_DIR/tools/reesed"
CLIENT="$BUILD_DIR/tools/reese_client"
for bin in "$REESED" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "fleet_smoke: missing $bin (build first)"; exit 1; }
done

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Start a reesed; sets DAEMON_PORT and DAEMON_PID (no subshell — the pid
# must land in PIDS for cleanup). $1 = log prefix, rest = extra flags.
start_daemon() {
  local prefix=$1; shift
  "$REESED" --port 0 "$@" > "$WORK/$prefix.out" 2> "$WORK/$prefix.err" &
  DAEMON_PID=$!
  PIDS+=("$DAEMON_PID")
  DAEMON_PORT=""
  for _ in $(seq 100); do
    DAEMON_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)/\1/p' \
                  "$WORK/$prefix.out")
    [[ -n "$DAEMON_PORT" ]] && return
    sleep 0.1
  done
  echo "fleet_smoke: $prefix never printed its port" >&2
  exit 1
}

cat > "$WORK/spec.json" <<'SPEC'
{"workloads": ["gcc", "li"], "variants": ["baseline", "reese_either"],
 "replicas": 12, "instructions": 200000, "seed": 20260808}
SPEC

echo "== single-node reference"
start_daemon single --workers 2
REF_PORT=$DAEMON_PORT
id=$("$CLIENT" --port "$REF_PORT" submit-campaign "$WORK/spec.json")
"$CLIENT" --port "$REF_PORT" wait "$id" --poll-ms 50
"$CLIENT" --port "$REF_PORT" result "$id" > "$WORK/single.json"
"$CLIENT" --port "$REF_PORT" result "$id" --csv > "$WORK/single.csv"

echo "== fleet: coordinator + 2 workers, one SIGKILLed mid-run"
start_daemon worker1 --workers 2
W1_PORT=$DAEMON_PORT W1_PID=$DAEMON_PID
start_daemon worker2 --workers 2
W2_PORT=$DAEMON_PORT
start_daemon coordinator --coordinator \
    --worker "127.0.0.1:$W1_PORT" --worker "127.0.0.1:$W2_PORT" \
    --shards-per-worker 3
CO_PORT=$DAEMON_PORT

id=$("$CLIENT" --port "$CO_PORT" submit-campaign "$WORK/spec.json")
sleep 0.3
kill -9 "$W1_PID"
echo "   killed worker 1 (pid $W1_PID) mid-campaign"
state=$("$CLIENT" --port "$CO_PORT" wait "$id" --poll-ms 50)
[[ "$state" == "done" ]] || {
  echo "fleet_smoke: campaign ended in state $state" >&2
  cat "$WORK/coordinator.err" >&2
  exit 1
}
"$CLIENT" --port "$CO_PORT" result "$id" > "$WORK/fleet.json"
"$CLIENT" --port "$CO_PORT" result "$id" --csv > "$WORK/fleet.csv"

grep -q "re-dispatching shard" "$WORK/coordinator.err" || \
  echo "   note: worker died between shards (no re-dispatch needed)"

cmp "$WORK/fleet.json" "$WORK/single.json" || {
  echo "fleet_smoke: json diverged from the single-node run" >&2; exit 1; }
cmp "$WORK/fleet.csv" "$WORK/single.csv" || {
  echo "fleet_smoke: csv diverged from the single-node run" >&2; exit 1; }
echo "== ok: fleet output byte-identical to single node ($(wc -c < "$WORK/fleet.json") bytes json)"

#!/usr/bin/env python3
"""doc_check: keep the docs honest about the CLI surface.

Three checks, all gating in CI (.github/workflows/ci.yml "docs" job):

1. Flag coverage — every `--flag` string literal that a binary under
   bench/ or tools/ actually parses must be mentioned in README.md or
   EXPERIMENTS.md. Removing a flag's documentation (or documenting a flag
   that was renamed in code only) fails the build.

2. Schema coverage — every report schema literal ("reese-*-vN") a bench
   emits must be mentioned in README.md or EXPERIMENTS.md, so a new or
   renamed report format cannot ship undocumented.

3. Link integrity — every intra-repo markdown link in the top-level *.md
   files and docs referenced from them must point at a file that exists.

Usage: python3 tools/doc_check.py [repo_root]
Exit status 0 when both checks pass, 1 otherwise.
"""

import os
import re
import sys


# A flag "counts" when the source compares or documents it as an argument:
# string literals like "--jobs" / "--jobs=..." in bench/*.cpp, tools/*.cpp.
FLAG_LITERAL = re.compile(r'"(--[a-z][a-z0-9-]*)=?"')

# A report schema "counts" when a bench emits it as a JSON string literal,
# e.g. \"schema\": \"reese-cavf-v1\" in bench/*.cpp.
SCHEMA_LITERAL = re.compile(r'\\"(reese-[a-z0-9-]+-v\d+)\\"')

# [text](target) markdown links; images share the syntax via a leading '!'.
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# External or intra-page targets that are not files on disk.
NON_FILE_PREFIXES = ("http://", "https://", "mailto:", "#")


def collect_flags(repo_root):
    """Map flag -> sorted list of source files that parse it."""
    flags = {}
    for subdir in ("bench", "tools"):
        directory = os.path.join(repo_root, subdir)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".cpp"):
                continue
            path = os.path.join(directory, name)
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            for flag in FLAG_LITERAL.findall(text):
                flags.setdefault(flag, set()).add(os.path.join(subdir, name))
    return {flag: sorted(sources) for flag, sources in flags.items()}


def collect_schemas(repo_root):
    """Map report schema -> sorted list of bench sources that emit it."""
    schemas = {}
    directory = os.path.join(repo_root, "bench")
    if not os.path.isdir(directory):
        return schemas
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".cpp"):
            continue
        path = os.path.join(directory, name)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for schema in SCHEMA_LITERAL.findall(text):
            schemas.setdefault(schema, set()).add(os.path.join("bench", name))
    return {schema: sorted(sources) for schema, sources in schemas.items()}


def check_flag_coverage(repo_root):
    doc_paths = [os.path.join(repo_root, name)
                 for name in ("README.md", "EXPERIMENTS.md")]
    documented = ""
    for path in doc_paths:
        with open(path, encoding="utf-8") as handle:
            documented += handle.read()

    errors = []
    for flag, sources in sorted(collect_flags(repo_root).items()):
        if flag not in documented:
            errors.append(
                f"flag {flag} (parsed by {', '.join(sources)}) is not "
                f"documented in README.md or EXPERIMENTS.md")
    for schema, sources in sorted(collect_schemas(repo_root).items()):
        if schema not in documented:
            errors.append(
                f"schema {schema} (emitted by {', '.join(sources)}) is not "
                f"documented in README.md or EXPERIMENTS.md")
    return errors


def markdown_files(repo_root):
    """Top-level *.md plus any docs/ markdown; skip build and .git trees."""
    found = []
    for entry in sorted(os.listdir(repo_root)):
        path = os.path.join(repo_root, entry)
        if entry.endswith(".md") and os.path.isfile(path):
            found.append(path)
    docs_dir = os.path.join(repo_root, "docs")
    if os.path.isdir(docs_dir):
        for root, _dirs, names in os.walk(docs_dir):
            for name in sorted(names):
                if name.endswith(".md"):
                    found.append(os.path.join(root, name))
    return found


def check_links(repo_root):
    errors = []
    for md_path in markdown_files(repo_root):
        base = os.path.dirname(md_path)
        with open(md_path, encoding="utf-8") as handle:
            text = handle.read()
        for target in MARKDOWN_LINK.findall(text):
            if target.startswith(NON_FILE_PREFIXES):
                continue
            # Strip an intra-file anchor: DESIGN.md#section -> DESIGN.md.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md_path, repo_root)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def main():
    repo_root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    errors = check_flag_coverage(repo_root) + check_links(repo_root)
    for error in errors:
        print(f"doc_check: {error}", file=sys.stderr)
    if errors:
        print(f"doc_check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("doc_check: ok (flags documented, links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// reese_sim: the full command-line simulator, SimpleScalar style.
//
//   $ ./build/examples/reese_cli -workload li -reese 1 -spare_alus 2
//       [-instr 500000 -ruu 32 -lsq 16 -rqueue 32 -pred gshare ...]
//
// Flags (all optional):
//   -config FILE       read flags from a config file (command line wins)
//   -workload NAME     workload to run (default gcc; see -list)
//   -list              list available workloads and exit
//   -instr N           committed-instruction budget (default 300000)
//   -reese 0|1         enable REESE (default 0 = baseline)
//   -spare_alus N      extra integer ALUs for the REESE model
//   -spare_mults N     extra integer mult/div units
//   -ruu N -lsq N      window sizes
//   -width N           fetch/decode/issue/commit width
//   -ports N           memory ports
//   -rqueue N          R-stream Queue entries
//   -kreexec N         re-execute 1 of every N instructions
//   -early 0|1         early release (default 1)
//   -minsep N          enforced minimum P->R separation
//   -pred NAME         nottaken|taken|btfn|bimodal|gshare|local|tournament
//   -seed N            workload data seed
//   -fault_rate F      inject faults at rate F per instruction
//   -prelint 0|1       statically lint the workload program before running;
//                      refuse to start on error-severity findings
//   --trace-out FILE   write a Chrome trace_event JSON trace of the run
//                      (open in Perfetto / chrome://tracing; see
//                      tools/trace_check.py)
//   --trace-sample N   with --trace-out: trace every Nth instruction only
//                      (default 1 = all; keeps long runs tractable)
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/flags.h"
#include "core/chrome_trace.h"
#include "faults/injector.h"
#include "sim/prelint.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

bool pick_predictor(const std::string& name, branch::PredictorKind* out) {
  using branch::PredictorKind;
  const struct {
    const char* name;
    PredictorKind kind;
  } kTable[] = {
      {"nottaken", PredictorKind::kNotTaken}, {"taken", PredictorKind::kTaken},
      {"btfn", PredictorKind::kBtfn},         {"bimodal", PredictorKind::kBimodal},
      {"gshare", PredictorKind::kGshare},     {"local", PredictorKind::kLocal},
      {"tournament", PredictorKind::kTournament},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (auto parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return 2;
  }
  if (flags.has("config")) {
    if (auto loaded = flags.parse_file(flags.get_string("config", ""));
        !loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.error().to_string().c_str());
      return 2;
    }
  }

  if (flags.get_bool("list", false)) {
    std::printf("available workloads:\n");
    for (const std::string& name : workloads::all_workload_names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }

  core::CoreConfig config = core::starting_config();
  config.ruu_size = static_cast<u32>(flags.get_u64("ruu", config.ruu_size));
  config.lsq_size = static_cast<u32>(flags.get_u64("lsq", config.lsq_size));
  const u32 width =
      static_cast<u32>(flags.get_u64("width", config.issue_width));
  config.fetch_width = config.decode_width = width;
  config.issue_width = config.commit_width = width;
  config.mem_port_count =
      static_cast<u32>(flags.get_u64("ports", config.mem_port_count));
  if (flags.has("pred")) {
    if (!pick_predictor(flags.get_string("pred", "gshare"),
                        &config.predictor)) {
      std::fprintf(stderr, "unknown predictor\n");
      return 2;
    }
  }
  if (flags.get_bool("reese", false)) {
    config = core::with_reese(
        config, static_cast<u32>(flags.get_u64("spare_alus", 0)),
        static_cast<u32>(flags.get_u64("spare_mults", 0)));
    config.reese.rqueue_size =
        static_cast<u32>(flags.get_u64("rqueue", config.reese.rqueue_size));
    config.reese.reexec_interval =
        static_cast<u32>(flags.get_u64("kreexec", 1));
    config.reese.early_release = flags.get_bool("early", true);
    config.reese.min_separation =
        static_cast<u32>(flags.get_u64("minsep", 0));
  }

  workloads::WorkloadOptions options;
  options.seed = flags.get_u64("seed", 0x5EED5EED);
  auto workload =
      workloads::make_workload(flags.get_string("workload", "gcc"), options);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s (try -list)\n",
                 workload.error().to_string().c_str());
    return 2;
  }

  if (flags.get_bool("prelint", false)) {
    const sim::PrelintResult lint =
        sim::prelint_program(workload.value().program);
    if (!lint.diagnostics.empty()) {
      std::fprintf(stderr, "%s",
                   render_diagnostics(lint.diagnostics, DiagFormat::kText,
                                      workload.value().name)
                       .c_str());
    }
    if (!lint.ok) {
      std::fprintf(stderr,
                   "prelint: refusing to simulate a malformed program\n");
      return 1;
    }
  }

  faults::InjectorConfig fault_config;
  fault_config.rate = flags.get_double("fault_rate", 0.0);
  faults::Injector injector(fault_config);

  sim::Simulator simulator(std::move(workload).value(), config);
  if (fault_config.rate > 0.0) {
    simulator.pipeline().set_fault_hook(&injector);
  }

  std::unique_ptr<core::FileTraceSink> trace_sink;
  std::unique_ptr<core::ChromeTraceTracer> chrome_tracer;
  std::unique_ptr<core::SamplingTracer> sampling_tracer;
  const std::string trace_path = flags.get_string("trace-out", "");
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<core::FileTraceSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 2;
    }
    chrome_tracer = std::make_unique<core::ChromeTraceTracer>(trace_sink.get());
    const u64 sample = flags.get_u64("trace-sample", 1);
    if (sample > 1) {
      sampling_tracer =
          std::make_unique<core::SamplingTracer>(chrome_tracer.get(), sample);
      simulator.pipeline().set_tracer(sampling_tracer.get());
    } else {
      simulator.pipeline().set_tracer(chrome_tracer.get());
    }
  }

  std::printf("workload: %s (%s)\n", simulator.workload().name.c_str(),
              simulator.workload().mimics.c_str());
  std::printf("config:   %s\n\n", config.summary().c_str());

  const sim::SimResult result =
      simulator.run(flags.get_u64("instr", sim::default_instruction_budget()));

  std::printf("%s", simulator.pipeline().report().c_str());
  if (fault_config.rate > 0.0) {
    std::printf("faults: injected %llu, detected %llu (%.1f%% coverage)\n",
                static_cast<unsigned long long>(injector.injected()),
                static_cast<unsigned long long>(injector.detected()),
                100.0 * injector.coverage());
  }
  if (chrome_tracer != nullptr) {
    chrome_tracer->finish();
    std::printf("trace:    %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(
                    chrome_tracer->events_emitted()));
  }
  std::printf("stop reason: %s\n", core::stop_reason_name(result.stop));
  return 0;
}

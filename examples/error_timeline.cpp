// error_timeline: watch REESE catch a soft error, cycle by cycle.
//
//   $ ./build/examples/error_timeline
//
// Runs a small loop on the REESE pipeline, injects exactly one bit flip
// into a chosen instruction's P-stream result, and prints the pipeline
// timeline around the event — the dispatch/issue/writeback of the primary
// execution, the R-stream re-execution, and the comparator flagging the
// mismatch (ERROR-DETECTED) before commit.
#include <cstdio>

#include "core/pipeline.h"
#include "core/trace.h"
#include "faults/injector.h"
#include "isa/assembler.h"

using namespace reese;

int main() {
  auto assembled = isa::assemble(R"(
main:
  li   t0, 200          # loop counter
  li   t1, 7
loop:
  mul  t2, t1, t1       # some real work to corrupt
  add  t3, t2, t0
  xor  t1, t1, t3
  addi t0, t0, -1
  bnez t0, loop
  out  t1
  halt
)");
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s\n", assembled.error().to_string().c_str());
    return 1;
  }
  const isa::Program program = std::move(assembled).value();

  // Find a committed instruction mid-loop to corrupt: true-path sequence
  // numbers are deterministic, so seq 500 is always the same instruction.
  faults::InjectorConfig fault_config;
  fault_config.schedule = {500};
  fault_config.target = faults::FaultTarget::kPResult;
  faults::Injector injector(fault_config);

  core::TimelineTracer tracer(/*capacity=*/600);
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  pipeline.set_fault_hook(&injector);
  pipeline.set_tracer(&tracer);
  pipeline.run(5'000, 500'000);

  std::printf("injected %llu fault(s), detected %llu "
              "(detection latency: %s)\n\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(injector.detected()),
              injector.latency().count() > 0
                  ? std::to_string(static_cast<unsigned long long>(
                        injector.latency().max())).c_str()
                  : "n/a");

  // Show the timeline window around the corrupted instruction.
  std::printf("timeline around the corrupted instruction (seq 500):\n");
  std::printf("  %6s %-9s %-22s %7s %7s %7s %7s %7s %7s\n", "seq", "pc",
              "instruction", "DS", "IS", "WB", "RI", "RC", "CT");
  for (const auto& row : tracer.rows()) {
    if (row.seq < 495 || row.seq > 505 || row.spec) continue;
    std::printf("  %6llu 0x%-7llx %-22s %7llu %7llu %7llu %7llu %7llu %7llu%s\n",
                static_cast<unsigned long long>(row.seq),
                static_cast<unsigned long long>(row.pc),
                isa::disassemble(row.inst).c_str(),
                static_cast<unsigned long long>(row.dispatch),
                static_cast<unsigned long long>(row.issue),
                static_cast<unsigned long long>(row.complete),
                static_cast<unsigned long long>(row.r_issue),
                static_cast<unsigned long long>(row.r_complete),
                static_cast<unsigned long long>(row.commit),
                row.error ? "   <-- comparator mismatch, error detected"
                          : "");
  }
  return injector.detected() == injector.injected() ? 0 : 1;
}

// asm_runner: assemble and run an SRV assembly file from disk.
//
//   $ ./build/examples/asm_runner examples/asm/hello_sum.s
//   $ ./build/examples/asm_runner -reese 1 -trace 1 examples/asm/fib.s
//
// Runs the program on the golden ISS and (optionally, -pipeline 1, the
// default) on the cycle-accurate pipeline, printing OUT values, the final
// checksum and timing statistics. With -trace 1 every ISS instruction is
// disassembled as it executes (first 200 shown). With -prelint 1 the
// program is statically checked first (see tools/srv_lint.cpp) and
// error-severity findings abort the run.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/trace.h"
#include "isa/assembler.h"
#include "isa/executor.h"
#include "isa/iss.h"
#include "sim/prelint.h"

using namespace reese;

int main(int argc, char** argv) {
  FlagSet flags;
  if (auto parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: asm_runner [-reese 0|1] [-trace 0|1] file.s\n");
    return 2;
  }

  std::ifstream file(flags.positional()[0]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[0].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto assembled = isa::assemble(buffer.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s: %s\n", flags.positional()[0].c_str(),
                 assembled.error().to_string().c_str());
    return 1;
  }
  const isa::Program program = std::move(assembled).value();
  std::printf("assembled %zu instructions, %zu data bytes, entry 0x%llx\n",
              program.code.size(), program.data.size(),
              static_cast<unsigned long long>(program.entry));

  if (flags.get_bool("prelint", false)) {
    const sim::PrelintResult lint = sim::prelint_program(program);
    if (!lint.diagnostics.empty()) {
      std::fprintf(stderr, "%s",
                   render_diagnostics(lint.diagnostics, DiagFormat::kText,
                                      flags.positional()[0])
                       .c_str());
    }
    if (!lint.ok) {
      std::fprintf(stderr, "prelint: refusing to run a malformed program\n");
      return 1;
    }
  }

  const bool trace = flags.get_bool("trace", false);
  const u64 max_instructions = flags.get_u64("instr", 10'000'000);

  isa::Iss iss(program);
  if (trace) {
    u64 shown = 0;
    u64 last_out_count = 0;
    while (shown < 200) {
      if (!program.contains_pc(iss.state().pc)) break;
      const isa::Instruction& inst = program.at(iss.state().pc);
      std::printf("  %06llx: %s\n",
                  static_cast<unsigned long long>(iss.state().pc),
                  isa::disassemble(inst).c_str());
      if (!iss.step_one()) break;
      if (iss.state().out_count != last_out_count) {
        last_out_count = iss.state().out_count;
        std::printf("  OUT -> hash now %016llx\n",
                    static_cast<unsigned long long>(iss.state().out_hash));
      }
      ++shown;
    }
    if (shown == 200) std::printf("  ... (trace capped at 200)\n");
  }
  const isa::IssResult result = iss.run(max_instructions);
  std::printf("ISS: %llu instructions, %llu OUTs, hash %016llx, %s\n",
              static_cast<unsigned long long>(result.executed_instructions),
              static_cast<unsigned long long>(result.out_count),
              static_cast<unsigned long long>(result.out_hash),
              result.halted ? "halted" : (result.bad_pc ? "BAD PC" : "budget"));

  if (flags.get_bool("pipeline", true)) {
    core::CoreConfig config = core::starting_config();
    if (flags.get_bool("reese", false)) config = core::with_reese(config, 2);
    core::Pipeline pipeline(program, config);
    // -pipetrace 1: collect the last N instruction lifecycles and print a
    // SimpleScalar-pipeview-style timeline after the run.
    core::TimelineTracer tracer(
        static_cast<usize>(flags.get_u64("tracecap", 48)));
    if (flags.get_bool("pipetrace", false)) pipeline.set_tracer(&tracer);
    pipeline.run(max_instructions, 64 * max_instructions);
    std::printf("\npipeline (%s):\n%s", config.summary().c_str(),
                pipeline.report().c_str());
    if (flags.get_bool("pipetrace", false)) {
      std::printf("\npipeline timeline (last %zu instructions; DS=dispatch "
                  "IS=issue WB=writeback RI=r-issue RC=compare CT=commit):\n%s",
                  tracer.rows().size(), tracer.to_string().c_str());
    }
    if (pipeline.arch_state().out_hash != result.out_hash) {
      std::printf("WARNING: pipeline/ISS hash mismatch!\n");
      return 1;
    }
  }
  return 0;
}

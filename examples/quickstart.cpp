// Quickstart: assemble a small SRV program, run it on the golden ISS, the
// baseline out-of-order pipeline, and the REESE pipeline, and compare.
//
//   $ ./build/examples/quickstart
//
// This demonstrates the three-layer API most users need:
//   isa::assemble()  -> Program
//   isa::Iss         -> functional reference run
//   core::Pipeline   -> cycle-accurate run (REESE on/off via CoreConfig)
#include <cstdio>

#include "core/pipeline.h"
#include "isa/assembler.h"
#include "isa/iss.h"

// A little checksum kernel: hash 64 numbers, print via OUT, halt.
constexpr char kProgram[] = R"(
main:
  li   t0, 64          # n
  li   t1, 0x9E37      # seed
  li   t2, 0           # hash
loop:
  slli t3, t1, 5
  sub  t3, t3, t1
  addi t1, t3, 17      # t1 = t1*31 + 17
  xor  t2, t2, t1
  addi t0, t0, -1
  bnez t0, loop
  out  t2
  halt
)";

int main() {
  auto assembled = reese::isa::assemble(kProgram);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 assembled.error().to_string().c_str());
    return 1;
  }
  const reese::isa::Program program = std::move(assembled).value();
  std::printf("assembled %zu instructions\n", program.code.size());

  // 1. Golden functional run.
  reese::isa::Iss iss(program);
  const reese::isa::IssResult golden = iss.run(1'000'000);
  std::printf("ISS: %llu instructions, out-hash %016llx\n",
              static_cast<unsigned long long>(golden.executed_instructions),
              static_cast<unsigned long long>(golden.out_hash));

  // 2. Baseline out-of-order pipeline (Table 1 starting configuration).
  reese::core::Pipeline baseline(program, reese::core::starting_config());
  baseline.run(1'000'000, 10'000'000);
  std::printf("\nbaseline pipeline:\n%s", baseline.report().c_str());

  // 3. REESE pipeline: every instruction re-executed and compared.
  reese::core::Pipeline reese_pipe(
      program, reese::core::with_reese(reese::core::starting_config(),
                                       /*spare_alus=*/2));
  reese_pipe.run(1'000'000, 10'000'000);
  std::printf("\nREESE pipeline (+2 spare ALUs):\n%s",
              reese_pipe.report().c_str());

  const bool match =
      baseline.arch_state().out_hash == golden.out_hash &&
      reese_pipe.arch_state().out_hash == golden.out_hash;
  std::printf("\narchitectural results %s\n",
              match ? "MATCH across all three engines" : "MISMATCH (bug!)");
  return match ? 0 : 1;
}

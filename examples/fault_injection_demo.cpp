// Fault-injection demo: bombard a REESE pipeline with transient bit flips
// while it runs the gcc-like workload, and watch the comparator catch them.
//
//   $ ./build/examples/fault_injection_demo [-rate 0.001] [-workload gcc]
//
// Also runs the same campaign on the baseline to show every fault escaping.
#include <cstdio>

#include "common/flags.h"
#include "faults/injector.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main(int argc, char** argv) {
  FlagSet flags;
  if (auto parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return 2;
  }
  const std::string workload_name = flags.get_string("workload", "gcc");
  const double rate = flags.get_double("rate", 1e-3);
  const u64 budget = flags.get_u64("instr", 200'000);

  for (const bool use_reese : {true, false}) {
    auto workload = workloads::make_workload(workload_name, {});
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.error().to_string().c_str());
      return 2;
    }
    const core::CoreConfig config =
        use_reese ? core::with_reese(core::starting_config(), 2)
                  : core::starting_config();

    faults::InjectorConfig fault_config;
    fault_config.rate = rate;
    faults::Injector injector(fault_config);

    sim::Simulator simulator(std::move(workload).value(), config);
    simulator.pipeline().set_fault_hook(&injector);
    const sim::SimResult result = simulator.run(budget);

    std::printf("%s on '%s': %llu instructions in %llu cycles (IPC %.3f)\n",
                use_reese ? "REESE" : "baseline", workload_name.c_str(),
                static_cast<unsigned long long>(result.committed),
                static_cast<unsigned long long>(result.cycles), result.ipc);
    std::printf("  faults injected:  %llu\n",
                static_cast<unsigned long long>(injector.injected()));
    std::printf("  faults detected:  %llu (%.1f%% coverage)\n",
                static_cast<unsigned long long>(injector.detected()),
                100.0 * injector.coverage());
    std::printf("  faults escaped:   %llu\n",
                static_cast<unsigned long long>(injector.undetected()));
    if (injector.detected() > 0) {
      std::printf("  %s\n",
                  injector.latency().to_string("detection latency").c_str());
    }
    std::printf("\n");
  }
  return 0;
}

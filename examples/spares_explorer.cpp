// spares_explorer: answer the paper's central question interactively —
// "How much spare hardware is needed to decrease the fault-tolerance
// overhead to zero?" (§3).
//
//   $ ./build/examples/spares_explorer [-workload li] [-max_alus 6]
//
// Sweeps spare integer ALUs 0..N for one workload (or all six) and prints
// the overhead curve, marking the first configuration within 1% of the
// baseline.
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

double run_ipc(const std::string& name, const core::CoreConfig& config,
               u64 budget) {
  auto workload = workloads::make_workload(name, {});
  sim::Simulator simulator(std::move(workload).value(), config);
  return simulator.run(budget).ipc;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (auto parsed = flags.parse(argc, argv); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return 2;
  }
  const u32 max_alus = static_cast<u32>(flags.get_u64("max_alus", 6));
  const u64 budget = flags.get_u64("instr", sim::default_instruction_budget());

  std::vector<std::string> names;
  if (flags.has("workload")) {
    names.push_back(flags.get_string("workload", "gcc"));
  } else {
    names = workloads::spec_like_names();
  }

  for (const std::string& name : names) {
    const double baseline = run_ipc(name, core::starting_config(), budget);
    std::printf("%s: baseline IPC %.3f\n", name.c_str(), baseline);
    bool reached = false;
    for (u32 spares = 0; spares <= max_alus; ++spares) {
      const double ipc =
          run_ipc(name, core::with_reese(core::starting_config(), spares),
                  budget);
      const double overhead = 100.0 * (baseline - ipc) / baseline;
      const bool at_goal = !reached && overhead <= 1.0;
      if (at_goal) reached = true;
      std::printf("  +%u spare ALU%s: IPC %.3f (overhead %5.1f%%)%s\n", spares,
                  spares == 1 ? " " : "s", ipc, overhead,
                  at_goal ? "   <- within 1% of baseline" : "");
    }
    if (!reached) {
      std::printf("  (goal not reached with %u spare ALUs — the residual "
                  "cost is structural, not ALU-bound)\n", max_alus);
    }
  }
  return 0;
}

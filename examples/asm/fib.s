# Recursive Fibonacci — exercises the call stack and the return-address
# stack predictor. OUTs fib(2) .. fib(16).
  .text
main:
  li   sp, 0x8000000
  li   s0, 2
next:
  mv   a0, s0
  call fib
  out  a0
  addi s0, s0, 1
  li   t0, 17
  blt  s0, t0, next
  halt

fib:
  li   t0, 2
  blt  a0, t0, fib_base
  addi sp, sp, -24
  sd   ra, 0(sp)
  sd   a0, 8(sp)
  addi a0, a0, -1
  call fib
  sd   a0, 16(sp)
  ld   a0, 8(sp)
  addi a0, a0, -2
  call fib
  ld   t1, 16(sp)
  add  a0, a0, t1
  ld   ra, 0(sp)
  addi sp, sp, 24
fib_base:
  ret

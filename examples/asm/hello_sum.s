# Sum the numbers 1..100 three different ways and publish each result.
# A minimal SRV assembly tour: loops, memory, and a function call.
  .text
main:
  li   sp, 0x8000000

  # 1. Straight loop.
  li   t0, 100
  li   t1, 0
loop1:
  add  t1, t1, t0
  addi t0, t0, -1
  bnez t0, loop1
  out  t1                 # 5050

  # 2. Through memory: fill an array then sum it.
  la   s0, array
  li   t0, 100
  li   t2, 1
fill:
  sd   t2, 0(s0)
  addi s0, s0, 8
  addi t2, t2, 1
  addi t0, t0, -1
  bnez t0, fill
  la   s0, array
  li   t0, 100
  li   t1, 0
sum2:
  ld   t3, 0(s0)
  add  t1, t1, t3
  addi s0, s0, 8
  addi t0, t0, -1
  bnez t0, sum2
  out  t1                 # 5050 again

  # 3. Gauss, via a helper function: n*(n+1)/2.
  li   a0, 100
  call gauss
  out  a0                 # 5050 once more
  halt

gauss:
  addi t0, a0, 1
  mul  a0, a0, t0
  srli a0, a0, 1
  ret

  .data
  .align 8
array: .space 800

// Simulator wrapper + experiment harness tests.
#include <gtest/gtest.h>

#include <fstream>

#include "isa/iss.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace reese::sim {
namespace {

TEST(Simulator, RunsToBudget) {
  auto workload = workloads::make_workload("dep_chain", {});
  ASSERT_TRUE(workload.ok());
  Simulator simulator(std::move(workload).value(), core::starting_config());
  const SimResult result = simulator.run(10'000);
  EXPECT_EQ(result.stop, core::StopReason::kCommitTarget);
  EXPECT_GE(result.committed, 10'000u);
  EXPECT_GT(result.ipc, 0.0);
  EXPECT_EQ(result.workload, "dep_chain");
}

TEST(Simulator, OwnsWorkloadLifetime) {
  // The Simulator must keep the Program alive internally (passing a
  // temporary Workload is safe).
  Simulator simulator(
      std::move(workloads::make_workload("ilp_chain", {})).value(),
      core::starting_config());
  EXPECT_EQ(simulator.run(5'000).stop, core::StopReason::kCommitTarget);
}

TEST(Models, NamesAndOrder) {
  EXPECT_STREQ(model_name(Model::kBaseline), "Baseline");
  EXPECT_STREQ(model_name(Model::kReese2Alu1Mult), "R+2ALU+1Mult");
  ASSERT_EQ(standard_models().size(), 5u);
  EXPECT_EQ(standard_models()[0], Model::kBaseline);
}

TEST(Models, ApplyModelAddsHardware) {
  const core::CoreConfig base = core::starting_config();
  const core::CoreConfig reese = apply_model(base, Model::kReese);
  EXPECT_TRUE(reese.reese.enabled);
  EXPECT_EQ(reese.int_alu_count, base.int_alu_count);

  const core::CoreConfig two = apply_model(base, Model::kReese2Alu);
  EXPECT_EQ(two.int_alu_count, base.int_alu_count + 2);
  EXPECT_EQ(two.int_mult_count, base.int_mult_count);

  const core::CoreConfig mult = apply_model(base, Model::kReese2Alu1Mult);
  EXPECT_EQ(mult.int_mult_count, base.int_mult_count + 1);

  const core::CoreConfig baseline = apply_model(base, Model::kBaseline);
  EXPECT_FALSE(baseline.reese.enabled);
}

TEST(Experiment, SmallGridRuns) {
  ExperimentSpec spec;
  spec.title = "test grid";
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline, Model::kReese};
  spec.workloads = {"dep_chain", "ilp_chain"};
  spec.instructions = 20'000;
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.ipc.size(), 2u);
  ASSERT_EQ(result.ipc[0].size(), 2u);
  for (const auto& row : result.ipc) {
    for (double ipc : row) EXPECT_GT(ipc, 0.0);
  }
  EXPECT_GT(result.average(0), 0.0);
}

TEST(Experiment, DefaultsFillIn) {
  ExperimentSpec spec;
  spec.base = core::starting_config();
  spec.workloads = {"dep_chain"};
  spec.models = {Model::kBaseline};
  spec.instructions = 5'000;
  const ExperimentResult result = run_experiment(spec);
  EXPECT_EQ(result.spec.instructions, 5'000u);
}

TEST(Experiment, TableContainsWorkloadsAndAverage) {
  ExperimentSpec spec;
  spec.title = "Figure test";
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline, Model::kReese};
  spec.workloads = {"dep_chain"};
  spec.instructions = 5'000;
  const ExperimentResult result = run_experiment(spec);
  const std::string table = result.table();
  EXPECT_NE(table.find("Figure test"), std::string::npos);
  EXPECT_NE(table.find("dep_chain"), std::string::npos);
  EXPECT_NE(table.find("AV"), std::string::npos);
  EXPECT_NE(table.find("Baseline"), std::string::npos);
  EXPECT_NE(table.find("REESE"), std::string::npos);
}

TEST(Experiment, OverheadPctSigns) {
  ExperimentResult result;
  result.spec.models = {Model::kBaseline, Model::kReese};
  result.spec.workloads = {"x"};
  result.ipc = {{2.0, 1.5}};
  EXPECT_DOUBLE_EQ(result.overhead_pct(1), 25.0);
  EXPECT_DOUBLE_EQ(result.overhead_pct(0), 0.0);
  EXPECT_DOUBLE_EQ(result.average(1), 1.5);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentSpec spec;
  spec.base = core::starting_config();
  spec.models = {Model::kReese};
  spec.workloads = {"go"};
  spec.instructions = 20'000;
  const ExperimentResult a = run_experiment(spec);
  const ExperimentResult b = run_experiment(spec);
  EXPECT_DOUBLE_EQ(a.ipc[0][0], b.ipc[0][0]);
}

TEST(Experiment, CsvFormat) {
  ExperimentResult result;
  result.spec.title = "Figure X";
  result.spec.models = {Model::kBaseline, Model::kReese};
  result.spec.workloads = {"alpha"};
  result.ipc = {{2.0, 1.5}};
  result.ipc_stdev = {{0.0, 0.1}};
  const std::string csv = result.csv();
  EXPECT_NE(csv.find("workload,model,ipc,ipc_stdev"), std::string::npos);
  EXPECT_NE(csv.find("alpha,Baseline,2.000000,0.000000"), std::string::npos);
  EXPECT_NE(csv.find("alpha,REESE,1.500000,0.100000"), std::string::npos);
}

TEST(Experiment, CsvFileWrittenWhenEnvSet) {
  setenv("REESE_CSV_DIR", "/tmp", 1);
  ExperimentSpec spec;
  spec.title = "CSV Probe 42";
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline};
  spec.workloads = {"dep_chain"};
  spec.instructions = 2'000;
  run_experiment(spec);
  unsetenv("REESE_CSV_DIR");
  std::ifstream file("/tmp/csv_probe_42.csv");
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "workload,model,ipc,ipc_stdev");
}

TEST(Experiment, MultiSeedProducesStdev) {
  ExperimentSpec spec;
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline};
  spec.workloads = {"go"};  // seeded board data
  spec.instructions = 15'000;
  spec.extra_seeds = {111, 222};
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.ipc[0][0], 0.0);
  EXPECT_GT(result.ipc_stdev[0][0], 0.0) << "seeded workload must vary";
}

TEST(Budget, EnvOverride) {
  // No env set in tests: default value.
  unsetenv("REESE_SIM_INSTR");
  EXPECT_EQ(default_instruction_budget(), 1'000'000u);
  setenv("REESE_SIM_INSTR", "12345", 1);
  EXPECT_EQ(default_instruction_budget(), 12'345u);
  unsetenv("REESE_SIM_INSTR");
}

}  // namespace
}  // namespace reese::sim

// Tests for the sim-layer prelint gate: a malformed program is refused,
// every shipped example program and every registered workload is accepted.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "isa/assembler.h"
#include "sim/prelint.h"
#include "workloads/workload.h"

namespace reese::sim {
namespace {

namespace fs = std::filesystem;

isa::Program assemble_file(const fs::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto assembled = isa::assemble(buffer.str());
  EXPECT_TRUE(assembled.ok())
      << path << ": "
      << (assembled.ok() ? "" : assembled.error().to_string());
  return std::move(assembled).value();
}

TEST(Prelint, RejectsMalformedProgram) {
  // Branch to absolute 0x0 (outside the text segment) and control running
  // off the end: two hard errors.
  auto assembled = isa::assemble(R"(
  .text
main:
  li   t0, 1
  beq  t0, t0, 0x0
  li   t1, 2
)");
  ASSERT_TRUE(assembled.ok());
  const PrelintResult result = prelint_program(assembled.value());
  EXPECT_FALSE(result.ok);
  EXPECT_GE(count_severity(result.diagnostics, Severity::kError), 2u);
}

TEST(Prelint, AcceptsCleanProgramWithWarnings) {
  // A dead store is only a warning: reported but not blocking.
  auto assembled = isa::assemble(R"(
  .text
main:
  li   t0, 1
  li   t0, 2
  out  t0
  halt
)");
  ASSERT_TRUE(assembled.ok());
  const PrelintResult result = prelint_program(assembled.value());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(count_severity(result.diagnostics, Severity::kError), 0u);
  EXPECT_GE(count_severity(result.diagnostics, Severity::kWarning), 1u);
}

TEST(Prelint, AcceptsEveryExampleProgram) {
  const fs::path root = fs::path(REESE_SOURCE_DIR) / "examples";
  usize checked = 0;
  for (const char* sub : {"asm", "srv"}) {
    for (const auto& entry : fs::directory_iterator(root / sub)) {
      const std::string ext = entry.path().extension().string();
      if (ext != ".s" && ext != ".srv") continue;
      const isa::Program program = assemble_file(entry.path());
      const PrelintResult result = prelint_program(program);
      EXPECT_TRUE(result.ok) << entry.path() << ":\n"
                             << render_diagnostics(result.diagnostics,
                                                   DiagFormat::kText,
                                                   entry.path().string());
      ++checked;
    }
  }
  // fib.s + hello_sum.s + the three .srv programs, at minimum.
  EXPECT_GE(checked, 5u);
}

TEST(Prelint, AcceptsEveryRegisteredWorkload) {
  for (const std::string& name : workloads::all_workload_names()) {
    auto workload = workloads::make_workload(name);
    ASSERT_TRUE(workload.ok()) << name;
    const PrelintResult result = prelint_program(workload.value().program);
    EXPECT_TRUE(result.ok)
        << name << ":\n"
        << render_diagnostics(result.diagnostics, DiagFormat::kText, name);
  }
}

}  // namespace
}  // namespace reese::sim

// Tests for the srv-vuln static AVF analysis (analysis/vuln.h): loop-depth
// estimation, the liveness-window interval fixed point on loops and
// diamonds, demanded-bits masking classification, the vulnerability
// ranking, and the reese-avf-v1 JSON report.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/vuln.h"
#include "isa/assembler.h"
#include "json_checker.h"

namespace reese::analysis {
namespace {

isa::Program assemble_or_die(std::string_view source) {
  auto assembled = isa::assemble(source);
  EXPECT_TRUE(assembled.ok())
      << (assembled.ok() ? "" : assembled.error().to_string());
  return std::move(assembled).value();
}

const InstVuln& record_at(const VulnReport& report, Addr pc) {
  for (const InstVuln& inst : report.instructions) {
    if (inst.pc == pc) return inst;
  }
  ADD_FAILURE() << "no record at pc " << pc;
  static InstVuln dummy;
  return dummy;
}

// --- loop depths -------------------------------------------------------------

TEST(LoopDepths, StraightLineIsDepthZero) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 1
  out  t0
  halt
)");
  const Cfg cfg(program);
  for (u32 depth : loop_depths(cfg)) EXPECT_EQ(depth, 0u);
}

TEST(LoopDepths, NestedLoopsStackAndDiamondStaysFlat) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 3
outer:
  li   t1, 3
inner:
  addi t1, t1, -1
  bnez t1, inner
  addi t0, t0, -1
  bnez t0, outer
  beqz t0, then
  addi t2, zero, 1
then:
  halt
)");
  const Cfg cfg(program);
  const std::vector<u32> depths = loop_depths(cfg);

  auto depth_at = [&](Addr pc) {
    return depths[cfg.block_of((pc - 0x1000) / 4)];
  };
  EXPECT_EQ(depth_at(0x1000), 0u);  // li t0 (before the loops)
  EXPECT_EQ(depth_at(0x1004), 1u);  // li t1 (outer body)
  EXPECT_EQ(depth_at(0x1008), 2u);  // addi t1 (inner body)
  EXPECT_EQ(depth_at(0x1010), 1u);  // addi t0 (outer body, after inner)
  EXPECT_EQ(depth_at(0x101c), 0u);  // diamond arm: no cycle, no depth
  EXPECT_EQ(depth_at(0x1020), 0u);  // halt

  EXPECT_DOUBLE_EQ(loop_frequency(0), 1.0);
  EXPECT_DOUBLE_EQ(loop_frequency(2), 100.0);
  // Capped: depth beyond kLoopDepthCap stops growing.
  EXPECT_DOUBLE_EQ(loop_frequency(kLoopDepthCap + 5),
                   loop_frequency(kLoopDepthCap));
}

// --- liveness-window fixed point ---------------------------------------------

TEST(Window, HullAndEmptyBehaveAsLattice) {
  const WindowInterval empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.expected(), 0.0);
  const WindowInterval a = WindowInterval::of(2, 4);
  EXPECT_EQ(WindowInterval::hull(empty, a), a);
  EXPECT_EQ(WindowInterval::hull(a, empty), a);
  EXPECT_EQ(WindowInterval::hull(a, WindowInterval::of(1, 7)),
            WindowInterval::of(1, 7));
  EXPECT_DOUBLE_EQ(a.expected(), 3.0);
}

TEST(Window, StraightLineDistancesAreExact) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 5
  addi t1, zero, 0
  add  t1, t1, t0
  out  t1
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  // li t0: last (only) read is `add`, two instructions later.
  EXPECT_EQ(record_at(report, 0x1000).window, WindowInterval::of(2, 2));
  // addi t1: read by `add` one instruction later (then redefined there).
  EXPECT_EQ(record_at(report, 0x1004).window, WindowInterval::of(1, 1));
  // add t1: read by `out` one instruction later.
  EXPECT_EQ(record_at(report, 0x1008).window, WindowInterval::of(1, 1));
}

TEST(Window, LoopFixedPointConvergesToBoundedInterval) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 4
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  // addi t0 in the loop body: its last read is two instructions later on
  // both paths — the addi itself on the back edge (read-then-redefine),
  // `out t0` on the exit path — so the fixed point is the exact [2, 2].
  const InstVuln& addi = record_at(report, 0x1004);
  EXPECT_EQ(addi.window, WindowInterval::of(2, 2));
  EXPECT_EQ(addi.depth, 1u);
}

TEST(Window, DiamondTakesTheHullOfBothArms) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 9
  beqz t0, other
  out  t0
  halt
other:
  addi t1, zero, 1
  add  t1, t1, t0
  out  t1
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  // li t0 is read at distance 1 (beqz) on both paths; its last read is
  // `out t0` at distance 2 on the fall-through arm and `add` at distance 3
  // on the taken arm — the interval must hull both.
  EXPECT_EQ(record_at(report, 0x1000).window, WindowInterval::of(2, 3));
}

TEST(Window, OverwrittenWithoutReadIsDead) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 1
  li   t0, 2
  out  t0
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  const InstVuln& first = record_at(report, 0x1000);
  EXPECT_DOUBLE_EQ(first.window.expected(), 0.0);
  EXPECT_EQ(first.mask_class, MaskClass::kDead);
  EXPECT_DOUBLE_EQ(first.score, 0.0);
}

// --- masking classification --------------------------------------------------

TEST(Masking, AndMaskDeratesHighBits) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 255
  andi t1, t0, 15
  out  t1
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  const InstVuln& li = record_at(report, 0x1000);
  EXPECT_EQ(li.demanded, u64{0xF});
  EXPECT_EQ(li.mask_class, MaskClass::kPartial);
  EXPECT_DOUBLE_EQ(li.demanded_fraction(), 4.0 / 64.0);
  // The andi result flows to `out`, which can observe every bit.
  const InstVuln& andi = record_at(report, 0x1004);
  EXPECT_EQ(andi.demanded, ~u64{0});
  EXPECT_EQ(andi.mask_class, MaskClass::kLive);
}

TEST(Masking, ByteStoreDemandsOnlyStoredBits) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 4096
  li   t1, 300
  sb   t1, 0(t0)
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  // t1 is consumed only as a byte-store value: 8 demanded bits.
  const InstVuln& li = record_at(report, 0x1004);
  EXPECT_EQ(li.demanded, u64{0xFF});
  EXPECT_EQ(li.mask_class, MaskClass::kPartial);
  // The store itself consumes its data immediately (window 1), but a flip
  // in the written value only matters within the stored byte.
  const InstVuln& sb = record_at(report, 0x1008);
  EXPECT_EQ(sb.window, WindowInterval::of(1, 1));
  EXPECT_EQ(sb.demanded, u64{0xFF});
  EXPECT_EQ(sb.mask_class, MaskClass::kPartial);
}

TEST(Masking, ShiftConstantMovesTheDemandedCone) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 7
  slli t1, t0, 60
  out  t1
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  // Only t0's low 4 bits survive the left shift by 60.
  EXPECT_EQ(record_at(report, 0x1000).demanded, u64{0xF});
}

// --- ranking and report ------------------------------------------------------

TEST(Ranking, LoopBodyOutranksStraightLine) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 4
loop:
  addi t0, t0, -1
  bnez t0, loop
  li   t2, 17
  out  t2
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  ASSERT_FALSE(report.ranking.empty());
  // Ranking indices are a permutation sorted by score desc.
  std::vector<usize> sorted = report.ranking;
  std::sort(sorted.begin(), sorted.end());
  for (usize i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  for (usize i = 1; i < report.ranking.size(); ++i) {
    EXPECT_GE(report.instructions[report.ranking[i - 1]].score,
              report.instructions[report.ranking[i]].score);
  }
  // The loop-carried addi (depth 1, freq 10) must outrank the li t2
  // producer in straight-line code.
  const InstVuln& addi = record_at(report, 0x1004);
  const InstVuln& li_t2 = record_at(report, 0x100c);
  EXPECT_EQ(addi.depth, 1u);
  EXPECT_EQ(li_t2.depth, 0u);
  EXPECT_GT(addi.score, li_t2.score);
  EXPECT_EQ(report.instructions[report.ranking[0]].pc, addi.pc);
}

TEST(Report, JsonIsValidAndCarriesTheSchema) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 4
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  const VulnReport report = analyze_vulnerability(program);
  const std::string json = report.json("unit.srv");
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"reese-avf-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"static\""), std::string::npos);
  EXPECT_NE(json.find("\"ranking\""), std::string::npos);
  EXPECT_NE(json.find("\"demanded_mask\""), std::string::npos);

  const std::string table = report.table("unit.srv", 3);
  EXPECT_NE(table.find("unit.srv"), std::string::npos);
}

}  // namespace
}  // namespace reese::analysis

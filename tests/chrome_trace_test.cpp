// ChromeTraceTracer / SamplingTracer event-stream tests, the per-cycle
// stall attribution invariant (classes partition total cycles), and the
// CoreStats -> metrics registry export.
#include <gtest/gtest.h>

#include <set>

#include "common/json.h"
#include "common/metrics.h"
#include "core/chrome_trace.h"
#include "core/pipeline.h"
#include "core/stats.h"
#include "isa/assembler.h"
#include "json_checker.h"

namespace reese {
namespace {

isa::Program tiny_program() {
  auto assembled = isa::assemble(R"(
main:
  li   t0, 12
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  EXPECT_TRUE(assembled.ok());
  return std::move(assembled).value();
}

/// Run `program` to halt under a ChromeTraceTracer; return the parsed doc.
json::Value traced_run(const core::CoreConfig& config,
                       core::StringTraceSink* sink) {
  const isa::Program program = tiny_program();
  core::Pipeline pipeline(program, config);
  core::ChromeTraceTracer tracer(sink);
  pipeline.set_tracer(&tracer);
  EXPECT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);
  tracer.finish();
  EXPECT_TRUE(JsonChecker(sink->str()).valid());
  Result<json::Value> parsed = json::parse_json(sink->str());
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

TEST(ChromeTrace, EmitsWellFormedDocument) {
  core::StringTraceSink sink;
  const json::Value document = traced_run(core::starting_config(), &sink);
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array.size(), 10u);

  bool p_named = false;
  bool r_named = false;
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const json::Value* phase = event.find("ph");
    ASSERT_NE(phase, nullptr);
    ASSERT_TRUE(phase->is_string());
    if (phase->string == "M" && event.find("name")->string == "thread_name") {
      const std::string& track = event.find("args")->find("name")->string;
      if (track == "P-stream") p_named = true;
      if (track == "R-stream") r_named = true;
    }
    if (phase->string == "X") {
      EXPECT_GE(event.find("dur")->number, 0.0);
      EXPECT_GE(event.find("ts")->number, 0.0);
      ASSERT_NE(event.find("args"), nullptr);
      EXPECT_NE(event.find("args")->find("seq"), nullptr);
    }
  }
  EXPECT_TRUE(p_named);
  EXPECT_TRUE(r_named);
}

TEST(ChromeTrace, ReeseRunHasBothTracksAndBalancedFlows) {
  core::StringTraceSink sink;
  const json::Value document =
      traced_run(core::with_reese(core::starting_config()), &sink);
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);

  usize p_slices = 0;
  usize r_slices = 0;
  std::set<u64> flow_starts;
  std::set<u64> flow_finishes;
  for (const json::Value& event : events->array) {
    const std::string& phase = event.find("ph")->string;
    if (phase == "X") {
      const u64 tid = event.find("tid")->uint_value;
      if (tid == 0) ++p_slices;
      if (tid == 1) ++r_slices;
    }
    if (phase == "s") {
      EXPECT_TRUE(flow_starts.insert(event.find("id")->uint_value).second)
          << "duplicate flow start id";
    }
    if (phase == "f") {
      EXPECT_TRUE(flow_finishes.insert(event.find("id")->uint_value).second)
          << "duplicate flow finish id";
    }
  }
  EXPECT_GT(p_slices, 10u);
  EXPECT_GT(r_slices, 10u);
  // Every P-complete -> R-compare arrow starts and finishes exactly once.
  EXPECT_EQ(flow_starts, flow_finishes);
  EXPECT_EQ(flow_starts.size(), r_slices);
}

TEST(ChromeTrace, BaselineRunHasNoRTrackOrFlows) {
  core::StringTraceSink sink;
  const json::Value document = traced_run(core::starting_config(), &sink);
  for (const json::Value& event : document.find("traceEvents")->array) {
    const std::string& phase = event.find("ph")->string;
    EXPECT_NE(phase, "s");
    EXPECT_NE(phase, "f");
    if (phase == "X") {
      EXPECT_EQ(event.find("tid")->uint_value, 0u);
    }
  }
}

TEST(ChromeTrace, SquashedInstructionsBecomeInstants) {
  core::StringTraceSink sink;
  core::CoreConfig config = core::starting_config();
  config.predictor = branch::PredictorKind::kTaken;  // guaranteed mispredicts
  const json::Value document = traced_run(config, &sink);
  usize squash_instants = 0;
  usize squashed_slices = 0;
  for (const json::Value& event : document.find("traceEvents")->array) {
    const std::string& phase = event.find("ph")->string;
    if (phase == "i" && event.find("name")->string == "squash") {
      ++squash_instants;
    }
    if (phase == "X") {
      const json::Value* category = event.find("cat");
      if (category != nullptr && category->string == "squashed") {
        ++squashed_slices;
        EXPECT_TRUE(event.find("args")->find("spec")->boolean);
      }
    }
  }
  EXPECT_GT(squash_instants, 0u);
  EXPECT_GT(squashed_slices, 0u);
}

TEST(ChromeTrace, SamplingTracerKeepsWholeLifecyclesOfEveryNth) {
  const isa::Program program = tiny_program();
  core::TimelineTracer inner(4096);
  core::SamplingTracer sampler(&inner, 4);
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  pipeline.set_tracer(&sampler);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  EXPECT_GT(sampler.forwarded(), 0u);
  EXPECT_GT(sampler.dropped(), sampler.forwarded());
  ASSERT_GT(inner.rows().size(), 2u);
  for (const auto& row : inner.rows()) {
    EXPECT_EQ(row.seq % 4, 0u);
    // Sticky selection: sampled lifecycles arrive complete, not truncated.
    if (!row.squashed && !row.spec && row.commit != 0) {
      EXPECT_GT(row.dispatch, 0u);
      EXPECT_GE(row.commit, row.complete);
    }
  }
}

TEST(ChromeTrace, SamplingTracerCycleWindow) {
  const isa::Program program = tiny_program();
  // Reference run to learn the dispatch-cycle range (the simulator is
  // deterministic, so the sampled run below sees identical cycles).
  Cycle last_dispatch = 0;
  {
    core::TimelineTracer reference(4096);
    core::Pipeline pipeline(program, core::starting_config());
    pipeline.set_tracer(&reference);
    ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);
    for (const auto& row : reference.rows()) {
      last_dispatch = std::max(last_dispatch, row.dispatch);
    }
  }
  ASSERT_GT(last_dispatch, 4u);
  const Cycle first = 3;
  const Cycle last = last_dispatch;  // window end is exclusive

  core::TimelineTracer inner(4096);
  core::SamplingTracer sampler(&inner, 1, first, last);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&sampler);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);
  ASSERT_GT(inner.rows().size(), 0u);
  for (const auto& row : inner.rows()) {
    EXPECT_GE(row.dispatch, first);
    EXPECT_LT(row.dispatch, last);
  }
  EXPECT_GT(sampler.dropped(), 0u);
}

TEST(ChromeTrace, FinishFlushesInFlightAndIsIdempotent) {
  const isa::Program program = tiny_program();
  core::StringTraceSink sink;
  core::ChromeTraceTracer tracer(&sink);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&tracer);
  // Stop mid-run: some instructions are dispatched but not yet committed.
  pipeline.run(5, 100'000);
  tracer.finish();
  const u64 emitted = tracer.events_emitted();
  tracer.finish();  // idempotent: no extra events, no extra closing bracket
  EXPECT_EQ(tracer.events_emitted(), emitted);
  EXPECT_TRUE(JsonChecker(sink.str()).valid()) << sink.str();
}

// ---------------------------------------------------------------------------
// Per-cycle stall attribution.

TEST(StallAttribution, ClassesPartitionTotalCycles) {
  const isa::Program program = tiny_program();
  for (const bool reese : {false, true}) {
    core::Pipeline pipeline(program,
                            reese ? core::with_reese(core::starting_config())
                                  : core::starting_config());
    ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);
    const core::CoreStats& stats = pipeline.stats();
    // Every simulated cycle is charged to exactly one class.
    EXPECT_EQ(stats.cycle_class_total(), stats.cycles);
    EXPECT_GT(
        stats.cycle_classes[static_cast<usize>(core::CycleClass::kBusy)], 0u);
    EXPECT_NE(pipeline.report().find("cycle classes:"), std::string::npos);
    EXPECT_NE(stats.cycle_class_summary().find("busy"), std::string::npos);
  }
}

TEST(StallAttribution, ClassNamesComplete) {
  for (usize i = 0; i < core::kCycleClassCount; ++i) {
    EXPECT_STRNE(core::cycle_class_name(static_cast<core::CycleClass>(i)),
                 "?");
  }
}

// ---------------------------------------------------------------------------
// CoreStats -> metrics registry export.

TEST(CoreStatsExport, MirrorsCountersAndHistogram) {
  const isa::Program program = tiny_program();
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);
  const core::CoreStats& stats = pipeline.stats();

  metrics::Registry registry;
  core::export_core_stats(&registry, stats, {{"workload", "tiny"}});

  metrics::Counter* committed = registry.counter(
      "reese_core_committed_instructions_total", {{"workload", "tiny"}});
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(committed->value(), stats.committed);
  metrics::Counter* cycles =
      registry.counter("reese_core_cycles_total", {{"workload", "tiny"}});
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value(), stats.cycles);

  // The per-class series partition the cycle counter.
  u64 class_sum = 0;
  for (const metrics::Sample& sample : registry.snapshot()) {
    if (sample.name == "reese_core_cycle_class_total") {
      class_sum += static_cast<u64>(sample.value);
    }
  }
  EXPECT_EQ(class_sum, stats.cycles);

  // The separation histogram mirrors the simulator's exactly: same count,
  // same sum.
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("reese_core_separation_cycles_count"),
            std::string::npos);
  for (const metrics::Sample& sample : registry.snapshot()) {
    if (sample.name == "reese_core_separation_cycles") {
      EXPECT_EQ(sample.count, stats.separation.count());
      EXPECT_DOUBLE_EQ(sample.sum,
                       static_cast<double>(stats.separation.sum()));
    }
  }

  // Re-export is idempotent for the histogram (counters are set in place).
  core::export_core_stats(&registry, stats, {{"workload", "tiny"}});
  for (const metrics::Sample& sample : registry.snapshot()) {
    if (sample.name == "reese_core_separation_cycles") {
      EXPECT_EQ(sample.count, stats.separation.count());
    }
  }
}

}  // namespace
}  // namespace reese

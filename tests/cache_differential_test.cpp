// Differential test: the production Cache against an independent,
// obviously-correct reference model, over random access streams and a
// grid of geometries. Any divergence in set indexing, tag matching, LRU
// ordering or writeback accounting shows up as a hit/miss mismatch.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/rng.h"
#include "mem/cache.h"

namespace reese::mem {
namespace {

/// Reference model: map of sets, each an LRU list of tags. Mirrors the
/// documented behaviour (write-back, write-allocate, LRU) with none of the
/// production code's packing tricks.
class ReferenceCache {
 public:
  ReferenceCache(u64 size_bytes, u32 line_bytes, u32 associativity)
      : line_bytes_(line_bytes),
        set_count_(size_bytes / (u64{line_bytes} * associativity)),
        associativity_(associativity) {}

  struct Outcome {
    bool hit;
    bool writeback;  ///< a dirty line was evicted
  };

  Outcome access(Addr addr, bool is_write) {
    const u64 line = addr / line_bytes_;
    const u64 set = line % set_count_;
    const u64 tag = line / set_count_;
    auto& entries = sets_[set];

    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->tag == tag) {
        Entry entry = *it;
        entry.dirty = entry.dirty || is_write;
        entries.erase(it);
        entries.push_front(entry);  // MRU
        return {true, false};
      }
    }
    bool writeback = false;
    if (entries.size() == associativity_) {
      writeback = entries.back().dirty;
      entries.pop_back();  // evict LRU
    }
    entries.push_front(Entry{tag, is_write});
    return {false, writeback};
  }

 private:
  struct Entry {
    u64 tag;
    bool dirty;
  };
  u64 line_bytes_;
  u64 set_count_;
  u32 associativity_;
  std::map<u64, std::list<Entry>> sets_;
};

struct Geometry {
  u64 size_bytes;
  u32 line_bytes;
  u32 associativity;
};

class CacheDifferentialTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheDifferentialTest, RandomStreamMatchesReference) {
  const Geometry& geometry = GetParam();
  CacheConfig config;
  config.size_bytes = geometry.size_bytes;
  config.line_bytes = geometry.line_bytes;
  config.associativity = geometry.associativity;
  config.hit_latency = 2;

  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);
  ReferenceCache reference(geometry.size_bytes, geometry.line_bytes,
                           geometry.associativity);

  SplitMix64 rng(geometry.size_bytes ^ geometry.line_bytes ^
                 geometry.associativity);
  u64 expected_hits = 0;
  u64 expected_writebacks = 0;
  for (int i = 0; i < 20000; ++i) {
    // Mixed locality: 70% inside a window 2x the cache, 30% anywhere in a
    // larger region — produces real conflict/capacity behaviour.
    Addr addr;
    if (rng.next_bool(0.7)) {
      addr = rng.next_below(2 * geometry.size_bytes);
    } else {
      addr = rng.next_below(16 * geometry.size_bytes);
    }
    const bool is_write = rng.next_bool(0.3);

    const u64 hits_before = cache.stats().hits;
    cache.access(addr, is_write);
    const bool cache_hit = cache.stats().hits > hits_before;

    const ReferenceCache::Outcome expected = reference.access(addr, is_write);
    ASSERT_EQ(cache_hit, expected.hit)
        << "access " << i << " addr 0x" << std::hex << addr;
    if (expected.hit) ++expected_hits;
    if (expected.writeback) ++expected_writebacks;
  }
  EXPECT_EQ(cache.stats().hits, expected_hits);
  EXPECT_EQ(cache.stats().writebacks, expected_writebacks);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferentialTest,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 64, 4}, Geometry{8192, 32, 8},
                      Geometry{2048, 16, 2}, Geometry{32768, 32, 2},
                      Geometry{16384, 64, 1}, Geometry{4096, 128, 4}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return std::to_string(info.param.size_bytes) + "B_" +
             std::to_string(info.param.line_bytes) + "line_" +
             std::to_string(info.param.associativity) + "way";
    });

}  // namespace
}  // namespace reese::mem

// Smoke test for the perf harness: run_perf on a tiny budget completes,
// the report is structurally sound, and its serialization is valid JSON
// (checked with a minimal recursive-descent validator — no JSON library
// in the repo, and the point is exactly that BENCH_perf.json stays
// machine-readable).
#include "sim/perf.h"

#include <cctype>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace reese::sim {
namespace {

/// Minimal JSON validator: objects, arrays, strings (with escapes),
/// numbers, true/false/null. Returns true iff `text` is one complete
/// JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const usize start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (peek() != *c) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  usize pos_ = 0;
};

PerfOptions tiny_options() {
  PerfOptions options;
  options.workloads = {"li"};
  options.instructions = 2'000;
  options.warmup_reps = 0;
  options.reps = 2;
  options.quick = true;
  return options;
}

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5, -3e2, \"x\\\"y\"], "
                          "\"b\": true}").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
  EXPECT_FALSE(JsonChecker("[1, 2").valid());
}

TEST(PerfSmokeTest, RunPerfCompletesAndReportsEveryWorkload) {
  const PerfReport report = run_perf(tiny_options());
  EXPECT_EQ(report.instructions, 2'000u);
  ASSERT_EQ(report.workloads.size(), 1u);
  EXPECT_EQ(report.workloads[0].workload, "li");
  EXPECT_GT(report.workloads[0].median_kips, 0.0);
  EXPECT_LE(report.workloads[0].min_kips, report.workloads[0].median_kips);
  EXPECT_GE(report.workloads[0].max_kips, report.workloads[0].median_kips);
  EXPECT_GT(report.aggregate_kips, 0.0);
  EXPECT_TRUE(report.grid_identical);
  EXPECT_GE(report.grid_jobs, 1u);
  EXPECT_GT(report.grid_seq_seconds, 0.0);
  EXPECT_GT(report.grid_par_seconds, 0.0);
}

TEST(PerfSmokeTest, ReportSerializesToValidJson) {
  const PerfReport report = run_perf(tiny_options());
  const std::string json = report.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"aggregate_kips\""), std::string::npos);
  EXPECT_NE(json.find("\"workloads\""), std::string::npos);
  EXPECT_NE(json.find("\"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"identical\": true"), std::string::npos);
}

TEST(PerfSmokeTest, WriteReportRoundTrips) {
  const PerfReport report = run_perf(tiny_options());
  const std::string path =
      testing::TempDir() + "/reese_perf_smoke.json";
  ASSERT_TRUE(write_perf_report(report, path));

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  usize n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(contents, report.json());
  EXPECT_TRUE(JsonChecker(contents).valid());
}

TEST(PerfSmokeTest, WriteReportFailsCleanlyOnBadPath) {
  const PerfReport report = run_perf(tiny_options());
  EXPECT_FALSE(write_perf_report(report, "/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace reese::sim

// Smoke test for the perf harness: run_perf on a tiny budget completes,
// the report is structurally sound, and its serialization is valid JSON
// (checked with the minimal validator in json_checker.h).
#include "sim/perf.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "json_checker.h"

namespace reese::sim {
namespace {

PerfOptions tiny_options() {
  PerfOptions options;
  options.workloads = {"li"};
  options.instructions = 2'000;
  options.warmup_reps = 0;
  options.reps = 2;
  options.quick = true;
  return options;
}

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, 2.5, -3e2, \"x\\\"y\"], "
                          "\"b\": true}").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
  EXPECT_FALSE(JsonChecker("[1, 2").valid());
}

TEST(PerfSmokeTest, RunPerfCompletesAndReportsEveryWorkload) {
  const PerfReport report = run_perf(tiny_options());
  EXPECT_EQ(report.instructions, 2'000u);
  ASSERT_EQ(report.workloads.size(), 1u);
  EXPECT_EQ(report.workloads[0].workload, "li");
  EXPECT_GT(report.workloads[0].median_kips, 0.0);
  EXPECT_LE(report.workloads[0].min_kips, report.workloads[0].median_kips);
  EXPECT_GE(report.workloads[0].max_kips, report.workloads[0].median_kips);
  EXPECT_GT(report.aggregate_kips, 0.0);
  EXPECT_TRUE(report.grid_identical);
  EXPECT_GE(report.grid_jobs, 1u);
  EXPECT_GT(report.grid_seq_seconds, 0.0);
  EXPECT_GT(report.grid_par_seconds, 0.0);
}

TEST(PerfSmokeTest, ReportSerializesToValidJson) {
  const PerfReport report = run_perf(tiny_options());
  const std::string json = report.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"aggregate_kips\""), std::string::npos);
  EXPECT_NE(json.find("\"workloads\""), std::string::npos);
  EXPECT_NE(json.find("\"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"identical\": true"), std::string::npos);
}

TEST(PerfSmokeTest, WriteReportRoundTrips) {
  const PerfReport report = run_perf(tiny_options());
  const std::string path =
      testing::TempDir() + "/reese_perf_smoke.json";
  ASSERT_TRUE(write_perf_report(report, path));

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  usize n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(contents, report.json());
  EXPECT_TRUE(JsonChecker(contents).valid());
}

TEST(PerfSmokeTest, WriteReportFailsCleanlyOnBadPath) {
  const PerfReport report = run_perf(tiny_options());
  EXPECT_FALSE(write_perf_report(report, "/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace reese::sim

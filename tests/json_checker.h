// Minimal JSON validator shared by the report-serialization tests
// (perf_smoke_test, injector_test): objects, arrays, strings (with
// escapes), numbers, true/false/null. There is no JSON library in the
// repo, and the point is exactly that the BENCH_*.json reports stay
// machine-readable.
#pragma once

#include <cctype>
#include <string>

#include "common/types.h"

namespace reese {

/// Returns true iff `text` is one complete JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const usize start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (peek() != *c) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  usize pos_ = 0;
};

}  // namespace reese

// Checkpoint/restore tests (DESIGN.md §14): a snapshot taken mid-run and
// restored into a fresh pipeline must continue bit-identically — same
// SimResult, same serialized end state — and the experiment/campaign
// runners must resume a partially-checkpointed grid to the exact matrix an
// uninterrupted run produces. Damaged inputs (corrupt, truncated, wrong
// format version, wrong cell) must be rejected with a clean error.
#include "sim/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/snapshot.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "workloads/workload.h"

namespace reese::sim {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "reese_snapshot_test_" + name;
}

std::unique_ptr<Simulator> make_sim(const std::string& workload_name,
                                    u64 seed) {
  workloads::WorkloadOptions options;
  options.seed = seed;
  options.iterations = 0;
  auto workload = workloads::make_workload(workload_name, options);
  EXPECT_TRUE(workload.ok());
  return std::make_unique<Simulator>(
      std::move(workload).value(),
      core::with_reese(core::starting_config()));
}

/// Drain and serialize the pipeline: the strongest equality we can ask of
/// two runs is that their whole persisted state is the same bytes.
std::vector<u8> drained_state_bytes(Simulator* simulator) {
  EXPECT_TRUE(simulator->pipeline().drain_to_barrier());
  SnapshotWriter writer;
  simulator->pipeline().save_state(&writer);
  return writer.bytes();
}

TEST(SnapshotTest, MidRunRestoreContinuesBitIdentically) {
  const std::string path = temp_path("midrun.snap");
  auto original = make_sim("gcc", 0x5EED);
  original->run(20'000);

  std::string error;
  ASSERT_TRUE(save_snapshot(original.get(), path, &error)) << error;

  auto restored = make_sim("gcc", 0x5EED);
  ASSERT_TRUE(load_snapshot(restored.get(), path, &error)) << error;

  // Both now hold the drained state at ~20k committed; run both out.
  const SimResult a = original->run(60'000);
  const SimResult b = restored->run(60'000);
  EXPECT_EQ(a.stop, core::StopReason::kCommitTarget);
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(drained_state_bytes(original.get()),
            drained_state_bytes(restored.get()));
  fs::remove(path);
}

TEST(SnapshotTest, KilledRunResumesToUninterruptedResult) {
  const std::string path = temp_path("resume.snap");
  fs::remove(path);
  std::string error;

  // Reference: an uninterrupted checkpointed run (same interval — the
  // drains at each boundary are part of the result's identity).
  const std::string ref_path = temp_path("resume_ref.snap");
  fs::remove(ref_path);
  auto reference = make_sim("li", 0xFEED);
  const SimResult ref = run_with_checkpoints(reference.get(), 50'000, 10'000,
                                             ref_path, false, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(ref.stop, core::StopReason::kCommitTarget);

  // "Kill" a second run partway: stop it mid-chunk at 25k. The snapshot on
  // disk holds the 20k boundary; the 20k..25k progress is lost, as after a
  // real kill.
  auto killed = make_sim("li", 0xFEED);
  run_with_checkpoints(killed.get(), 25'000, 10'000, path, false, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(fs::exists(path));

  auto resumed = make_sim("li", 0xFEED);
  const SimResult res = run_with_checkpoints(resumed.get(), 50'000, 10'000,
                                             path, true, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(ref.stop, res.stop);
  EXPECT_EQ(ref.ipc, res.ipc);
  EXPECT_EQ(ref.cycles, res.cycles);
  EXPECT_EQ(ref.committed, res.committed);
  EXPECT_EQ(drained_state_bytes(reference.get()),
            drained_state_bytes(resumed.get()));
  fs::remove(path);
  fs::remove(ref_path);
}

ExperimentSpec grid_spec(u32 jobs) {
  ExperimentSpec spec;
  spec.title = "snapshot resume grid";
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline, Model::kReese};
  spec.workloads = {"gcc", "li"};
  spec.instructions = 5'000;
  spec.extra_seeds = {0xAB12};
  spec.jobs = jobs;
  return spec;
}

TEST(SnapshotTest, ExperimentGridResumesUnderJobs) {
  const std::string dir = temp_path("grid");
  fs::remove_all(dir);
  const ExperimentResult reference = run_experiment(grid_spec(1));

  // Done-record granularity (interval 0): cell results are unchanged by
  // checkpointing, so the checkpointed grid must equal the plain one.
  ExperimentSpec spec = grid_spec(2);
  spec.checkpoint.dir = dir;
  const ExperimentResult first = run_experiment(spec);
  EXPECT_EQ(reference.cells, first.cells);

  // A ".done" record exists per cell (2 workloads x 2 models x 2 seeds).
  usize records = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    records += entry.path().extension() == ".done" ? 1 : 0;
  }
  EXPECT_EQ(records, 8u);

  // Simulate a killed grid: drop some records, corrupt another, and resume
  // under a different worker count. The matrix must still match.
  fs::remove(dir + "/snapshot_resume_grid-w0-m0-s0.done");
  fs::remove(dir + "/snapshot_resume_grid-w1-m1-s1.done");
  {
    std::FILE* file =
        std::fopen((dir + "/snapshot_resume_grid-w0-m1-s0.done").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("garbage", file);
    std::fclose(file);
  }
  spec = grid_spec(4);
  spec.checkpoint.dir = dir;
  spec.checkpoint.resume = true;
  const ExperimentResult resumed = run_experiment(spec);
  EXPECT_EQ(reference.cells, resumed.cells);
  EXPECT_EQ(reference.ipc, resumed.ipc);
  EXPECT_EQ(reference.ipc_stdev, resumed.ipc_stdev);
  fs::remove_all(dir);
}

CampaignSpec campaign_spec(u32 jobs) {
  CampaignSpec spec;
  spec.workloads = {"gcc"};
  spec.replicas = 2;
  spec.instructions = 5'000;
  spec.jobs = jobs;
  return spec;
}

TEST(SnapshotTest, CampaignResumesToIdenticalMatrix) {
  const std::string dir = temp_path("campaign");
  fs::remove_all(dir);
  const CampaignResult reference = run_campaign(campaign_spec(1));

  CampaignSpec spec = campaign_spec(2);
  spec.checkpoint.dir = dir;
  const CampaignResult first = run_campaign(spec);
  EXPECT_EQ(reference.matrix, first.matrix);

  // 5 variants x 1 workload x 2 replicas = 10 whole-cell records.
  usize records = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    records += entry.path().extension() == ".done" ? 1 : 0;
  }
  EXPECT_EQ(records, 10u);

  fs::remove(dir + "/campaign-v0-w0-r0.done");
  fs::remove(dir + "/campaign-v3-w0-r1.done");
  spec = campaign_spec(4);
  spec.checkpoint.dir = dir;
  spec.checkpoint.resume = true;
  const CampaignResult resumed = run_campaign(spec);
  EXPECT_EQ(reference.matrix, resumed.matrix);
  fs::remove_all(dir);
}

TEST(SnapshotTest, CorruptSnapshotIsRejected) {
  const std::string path = temp_path("corrupt.snap");
  auto sim = make_sim("gcc", 1);
  sim->run(2'000);
  std::string error;
  ASSERT_TRUE(save_snapshot(sim.get(), path, &error)) << error;

  // Flip one byte in the middle of the payload.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, size / 2, SEEK_SET);
  const int byte = std::fgetc(file);
  std::fseek(file, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x40, file);
  std::fclose(file);

  auto fresh = make_sim("gcc", 1);
  EXPECT_FALSE(load_snapshot(fresh.get(), path, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  fs::remove(path);
}

TEST(SnapshotTest, TruncatedSnapshotIsRejected) {
  const std::string path = temp_path("truncated.snap");
  auto sim = make_sim("gcc", 1);
  sim->run(2'000);
  std::string error;
  ASSERT_TRUE(save_snapshot(sim.get(), path, &error)) << error;

  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);

  auto fresh = make_sim("gcc", 1);
  EXPECT_FALSE(load_snapshot(fresh.get(), path, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  fs::remove(path);
}

TEST(SnapshotTest, VersionMismatchIsRejected) {
  const std::string path = temp_path("version.snap");
  SnapshotWriter writer;
  writer.put_u64(42);
  std::string error;
  ASSERT_TRUE(writer.write_file(path, kSnapshotFormatVersion + 1, &error))
      << error;

  auto fresh = make_sim("gcc", 1);
  EXPECT_FALSE(load_snapshot(fresh.get(), path, &error));
  EXPECT_NE(error.find("format version"), std::string::npos) << error;
  fs::remove(path);
}

TEST(SnapshotTest, WrongCellFingerprintIsRejected) {
  const std::string path = temp_path("fingerprint.snap");
  auto sim = make_sim("gcc", 1);
  sim->run(2'000);
  std::string error;
  ASSERT_TRUE(save_snapshot(sim.get(), path, &error)) << error;

  auto other = make_sim("li", 1);
  EXPECT_FALSE(load_snapshot(other.get(), path, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  fs::remove(path);
}

TEST(SnapshotTest, MissingSnapshotIsRejected) {
  auto sim = make_sim("gcc", 1);
  std::string error;
  EXPECT_FALSE(load_snapshot(sim.get(), temp_path("nonexistent.snap"), &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace reese::sim

// Fleet-mode coverage (DESIGN.md §15): campaign sharding and merging,
// the lossless ?format=cells wire form, the coordinator dispatcher
// against real in-process worker daemons (http::Server +
// SimulationService on loopback), worker death and re-dispatch, auth
// rejection, and the HTTP client behaviours the fleet leans on —
// keep-alive connection reuse, wall-clock deadlines against slow
// writers, and bounded retries that ride out 429 backpressure and
// daemon restarts.
//
// The load-bearing assertions are byte comparisons: a sharded campaign
// merged from any number of workers — including after a worker dies
// mid-run — must render json()/csv() identical to a single-node
// run_campaign of the same spec.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/chrome_trace.h"

#include "common/http.h"
#include "common/strutil.h"
#include "sim/campaign.h"
#include "sim/fleet.h"
#include "sim/service.h"

namespace reese {
namespace {

using sim::CampaignResult;
using sim::CampaignSpec;
using sim::CampaignWire;

/// A small campaign that still exercises multiple variants, workloads and
/// replicas. ~tens of milliseconds per cell.
CampaignSpec small_spec() {
  CampaignSpec spec;
  const std::vector<sim::CampaignVariant> standard =
      sim::standard_campaign_variants();
  spec.variants = {standard[3], standard[2]};  // baseline, reese_either
  spec.workloads = {"gcc", "li"};
  spec.replicas = 5;
  spec.instructions = 8000;
  spec.seed = 1234;
  spec.jobs = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Sharding: pure spec surgery.

TEST(Shard, SplitCoversTheReplicaAxis) {
  CampaignSpec spec = small_spec();
  spec.replicas = 12;
  spec.quick = false;
  const CampaignSpec resolved = sim::resolve_campaign_defaults(spec);
  const std::vector<CampaignSpec> shards =
      sim::split_campaign_spec(resolved, 5);
  ASSERT_EQ(shards.size(), 5u);
  u32 next_begin = 0;
  u32 total = 0;
  for (const CampaignSpec& shard : shards) {
    EXPECT_EQ(shard.replica_begin, next_begin) << "shards must be contiguous";
    EXPECT_GE(shard.replicas, 2u);  // sizes differ by at most one (12/5)
    EXPECT_LE(shard.replicas, 3u);
    EXPECT_FALSE(shard.quick) << "quick would re-clamp replicas on a worker";
    EXPECT_EQ(shard.seed, resolved.seed);
    EXPECT_EQ(shard.instructions, resolved.instructions);
    next_begin += shard.replicas;
    total += shard.replicas;
  }
  EXPECT_EQ(total, 12u);

  // More shards than replicas: empty shards are dropped, one replica each.
  const std::vector<CampaignSpec> thin = sim::split_campaign_spec(
      sim::resolve_campaign_defaults([] {
        CampaignSpec s = small_spec();
        s.replicas = 3;
        return s;
      }()),
      8);
  ASSERT_EQ(thin.size(), 3u);
  for (usize i = 0; i < thin.size(); ++i) {
    EXPECT_EQ(thin[i].replicas, 1u);
    EXPECT_EQ(thin[i].replica_begin, static_cast<u32>(i));
  }
}

TEST(Shard, MergedShardsAreByteIdenticalToSingleNode) {
  const CampaignSpec spec = small_spec();
  const CampaignResult single = sim::run_campaign(spec);

  const CampaignSpec resolved = sim::resolve_campaign_defaults(spec);
  const std::vector<CampaignSpec> shards =
      sim::split_campaign_spec(resolved, 3);
  ASSERT_EQ(shards.size(), 3u);

  // Run every shard as a worker would, but with *different* thread counts
  // per shard: the merged bytes must not depend on worker parallelism.
  sim::CampaignMatrix merged = sim::make_campaign_matrix(resolved);
  for (usize i = 0; i < shards.size(); ++i) {
    CampaignSpec shard = shards[i];
    shard.jobs = static_cast<u32>(i + 1);
    const CampaignResult part = sim::run_campaign(shard);
    // Through the full wire form, exactly like the coordinator.
    const std::string wire_bytes = sim::serialize_campaign_matrix(part);
    CampaignWire wire;
    std::string error;
    ASSERT_TRUE(sim::deserialize_campaign_matrix(wire_bytes, &wire, &error))
        << error;
    ASSERT_TRUE(sim::place_shard(resolved, wire, &merged, &error)) << error;
  }

  CampaignResult assembled;
  assembled.spec = resolved;
  assembled.matrix = merged;
  EXPECT_EQ(assembled.json(), single.json());
  EXPECT_EQ(assembled.csv(), single.csv());
  EXPECT_TRUE(assembled.matrix == single.matrix);
}

TEST(Shard, WireFormRoundTripsLosslessly) {
  CampaignSpec spec = small_spec();
  spec.workloads = {"gcc"};
  spec.replicas = 2;
  const CampaignResult result = sim::run_campaign(spec);
  const std::string bytes = sim::serialize_campaign_matrix(result);

  CampaignWire wire;
  std::string error;
  ASSERT_TRUE(sim::deserialize_campaign_matrix(bytes, &wire, &error)) << error;
  EXPECT_EQ(wire.seed, result.spec.seed);
  EXPECT_EQ(wire.instructions, result.spec.instructions);
  EXPECT_EQ(wire.rate, result.spec.rate);
  EXPECT_EQ(wire.replica_begin, 0u);
  ASSERT_EQ(wire.variant_labels.size(), 2u);
  EXPECT_EQ(wire.variant_labels[0], "baseline");
  EXPECT_EQ(wire.variant_labels[1], "reese_either");
  ASSERT_EQ(wire.workload_names.size(), 1u);
  EXPECT_EQ(wire.workload_names[0], "gcc");
  EXPECT_TRUE(wire.matrix == result.matrix);
}

TEST(Shard, DeserializeRejectsCorruptBuffers) {
  const CampaignResult result = sim::run_campaign([] {
    CampaignSpec s = small_spec();
    s.workloads = {"gcc"};
    s.replicas = 1;
    return s;
  }());
  const std::string good = sim::serialize_campaign_matrix(result);

  CampaignWire wire;
  std::string error;
  EXPECT_FALSE(sim::deserialize_campaign_matrix("not a snapshot", &wire,
                                                &error));
  EXPECT_FALSE(error.empty());

  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;  // payload corruption -> checksum fails
  EXPECT_FALSE(sim::deserialize_campaign_matrix(flipped, &wire, &error));

  const std::string truncated = good.substr(0, good.size() - 9);
  EXPECT_FALSE(sim::deserialize_campaign_matrix(truncated, &wire, &error));
}

TEST(Shard, PlaceShardEnforcesTheIdentityContract) {
  const CampaignSpec spec = small_spec();
  const CampaignSpec resolved = sim::resolve_campaign_defaults(spec);
  const std::vector<CampaignSpec> shards =
      sim::split_campaign_spec(resolved, 2);
  ASSERT_EQ(shards.size(), 2u);
  const CampaignResult part = sim::run_campaign(shards[0]);
  const std::string bytes = sim::serialize_campaign_matrix(part);
  CampaignWire wire;
  std::string error;
  ASSERT_TRUE(sim::deserialize_campaign_matrix(bytes, &wire, &error));

  sim::CampaignMatrix merged = sim::make_campaign_matrix(resolved);

  // A shard from a different campaign (wrong seed) must not merge.
  CampaignWire foreign = wire;
  foreign.seed ^= 1;
  EXPECT_FALSE(sim::place_shard(resolved, foreign, &merged, &error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;

  foreign = wire;
  foreign.variant_labels[0] = "reese_1of2";
  EXPECT_FALSE(sim::place_shard(resolved, foreign, &merged, &error));

  foreign = wire;
  foreign.replica_begin = resolved.replicas;  // range falls off the end
  EXPECT_FALSE(sim::place_shard(resolved, foreign, &merged, &error));

  // The genuine shard merges once — and only once (double delivery, e.g.
  // a re-dispatched shard whose first worker was wrongly declared dead,
  // must be caught rather than double-counted).
  ASSERT_TRUE(sim::place_shard(resolved, wire, &merged, &error)) << error;
  EXPECT_FALSE(sim::place_shard(resolved, wire, &merged, &error));
  EXPECT_NE(error.find("already"), std::string::npos) << error;
}

TEST(Shard, WireSpecJsonNeverSetsQuick) {
  const CampaignSpec resolved =
      sim::resolve_campaign_defaults(small_spec());
  const std::vector<CampaignSpec> shards =
      sim::split_campaign_spec(resolved, 2);
  const std::string body = sim::fleet::campaign_spec_json(shards[1], 0.0);
  EXPECT_EQ(body.find("quick"), std::string::npos)
      << "a quick wire spec would re-clamp replicas on the worker: " << body;
  EXPECT_NE(body.find("\"replica_begin\": "), std::string::npos) << body;
  EXPECT_EQ(body.find("timeout_s"), std::string::npos) << body;
  const std::string timed = sim::fleet::campaign_spec_json(shards[1], 2.5);
  EXPECT_NE(timed.find("\"timeout_s\": "), std::string::npos) << timed;
}

TEST(Shard, WorkerAddressParsing) {
  sim::fleet::Worker worker;
  std::string error;
  EXPECT_TRUE(sim::fleet::parse_worker_address("127.0.0.1:8642", &worker,
                                               &error));
  EXPECT_EQ(worker.host, "127.0.0.1");
  EXPECT_EQ(worker.port, 8642);
  EXPECT_FALSE(sim::fleet::parse_worker_address("no-port", &worker, &error));
  EXPECT_FALSE(sim::fleet::parse_worker_address("host:0", &worker, &error));
  EXPECT_FALSE(sim::fleet::parse_worker_address("host:99999", &worker,
                                                &error));
  EXPECT_FALSE(sim::fleet::parse_worker_address(":8642", &worker, &error));
}

// ---------------------------------------------------------------------------
// The dispatcher against real in-process workers.

/// One worker daemon: a SimulationService behind an http::Server on an
/// ephemeral loopback port, exactly what `reesed` runs.
struct WorkerDaemon {
  explicit WorkerDaemon(sim::ServiceConfig config = {})
      : service(config),
        server([this](const http::Request& request) {
          return service.handle(request);
        }) {
    EXPECT_TRUE(server.listen("127.0.0.1", 0));
    thread = std::thread([this] { server.serve(); });
  }
  ~WorkerDaemon() { stop(); }

  void stop() {
    if (!thread.joinable()) return;
    server.request_stop();
    // A no-op connect unblocks accept() if ::shutdown alone does not.
    http::RequestOptions nudge;
    nudge.deadline_s = 1.0;
    http::request("127.0.0.1", server.port(), "GET", "/v1/healthz", "",
                  nudge);
    thread.join();
    service.drain();
  }

  sim::fleet::Worker address() const {
    return {"127.0.0.1", server.port()};
  }

  sim::SimulationService service;
  http::Server server;
  std::thread thread;
};

/// Fast-failing fleet config pointed at `daemons`.
sim::fleet::FleetConfig fleet_config(
    const std::vector<WorkerDaemon*>& daemons) {
  sim::fleet::FleetConfig config;
  for (const WorkerDaemon* daemon : daemons) {
    config.workers.push_back(daemon->address());
  }
  config.max_retries = 1;
  config.backoff_ms = 5.0;
  config.backoff_max_ms = 20.0;
  config.poll_interval_ms = 5.0;
  config.probe_deadline_s = 2.0;
  return config;
}

TEST(Fleet, MergedResultIsByteIdenticalForTwoAndThreeWorkers) {
  const CampaignSpec spec = small_spec();
  const CampaignResult single = sim::run_campaign(spec);

  for (const usize worker_count : {2u, 3u}) {
    std::vector<std::unique_ptr<WorkerDaemon>> daemons;
    std::vector<WorkerDaemon*> ptrs;
    for (usize i = 0; i < worker_count; ++i) {
      daemons.push_back(std::make_unique<WorkerDaemon>());
      ptrs.push_back(daemons.back().get());
    }
    CampaignResult result;
    std::string error;
    ASSERT_TRUE(sim::fleet::run_fleet_campaign(fleet_config(ptrs), spec,
                                               &result, &error))
        << error;
    EXPECT_EQ(result.json(), single.json())
        << worker_count << " workers diverged from the single-node run";
    EXPECT_EQ(result.csv(), single.csv());
    EXPECT_FALSE(result.cancelled);
  }
}

TEST(Fleet, ComponentCampaignMergesByteIdenticallyAcrossTwoWorkers) {
  // Component variants travel the wire as "base@site" labels; a sharded
  // run must land on the same bytes as a single node, including the
  // masked/sdc/coverage_loss columns only site mode populates.
  CampaignSpec spec = small_spec();
  spec.variants.clear();
  spec.sites = {core::FaultSite::kRQueue, core::FaultSite::kDCache};
  const CampaignResult single = sim::run_campaign(spec);

  std::vector<std::unique_ptr<WorkerDaemon>> daemons;
  std::vector<WorkerDaemon*> ptrs;
  for (usize i = 0; i < 2; ++i) {
    daemons.push_back(std::make_unique<WorkerDaemon>());
    ptrs.push_back(daemons.back().get());
  }
  CampaignResult result;
  std::string error;
  ASSERT_TRUE(sim::fleet::run_fleet_campaign(fleet_config(ptrs), spec,
                                             &result, &error))
      << error;
  EXPECT_EQ(result.json(), single.json());
  EXPECT_EQ(result.csv(), single.csv());
  const sim::CampaignCell rqueue = result.variant_total(0);
  EXPECT_GT(rqueue.injected, 0u);
  EXPECT_EQ(rqueue.masked + rqueue.detected + rqueue.sdc, rqueue.injected);
}

TEST(Fleet, ShardCompletionsReachTheProgressCallback) {
  WorkerDaemon worker;
  CampaignSpec spec = small_spec();
  std::atomic<u64> last_done{0};
  std::atomic<u64> total_seen{0};
  spec.progress = [&](const sim::ProgressUpdate& update) {
    // Merge as monotonic maxima (the progress.h threading contract).
    u64 seen = last_done.load();
    while (update.cells_done > seen &&
           !last_done.compare_exchange_weak(seen, update.cells_done)) {
    }
    total_seen.store(update.cells_total);
  };
  CampaignResult result;
  std::string error;
  ASSERT_TRUE(sim::fleet::run_fleet_campaign(fleet_config({&worker}), spec,
                                             &result, &error))
      << error;
  // 2 variants x 2 workloads x 5 replicas.
  EXPECT_EQ(total_seen.load(), 20u);
  EXPECT_EQ(last_done.load(), 20u);
}

TEST(Fleet, SurvivesAWorkerDeathMidCampaignByteIdentically) {
  CampaignSpec spec = small_spec();
  spec.replicas = 8;
  spec.instructions = 60000;  // long enough to kill a worker mid-run
  const CampaignResult single = sim::run_campaign(spec);

  WorkerDaemon victim;
  WorkerDaemon survivor;
  sim::fleet::FleetConfig config = fleet_config({&victim, &survivor});
  config.shards_per_worker = 2;  // 4 shards: death costs one shard, not all

  CampaignResult result;
  std::string error;
  bool ok = false;
  std::thread campaign([&] {
    ok = sim::fleet::run_fleet_campaign(config, spec, &result, &error);
  });

  // Stop the victim once it has really accepted fleet work, so its
  // in-flight shard must be re-dispatched to the survivor.
  for (int i = 0; i < 4000 && victim.service.stats().submitted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(victim.service.stats().submitted, 0u);
  victim.stop();

  campaign.join();
  ASSERT_TRUE(ok) << error;
  EXPECT_EQ(result.json(), single.json())
      << "re-dispatched shards diverged from the single-node run";
  EXPECT_EQ(result.csv(), single.csv());
  // The survivor picked up work beyond its own initial shards.
  EXPECT_GT(survivor.service.stats().submitted, 2u);
}

TEST(Fleet, FailsWhenEveryWorkerIsDead) {
  sim::fleet::FleetConfig config;
  // A port from the ephemeral range with nothing listening: grab one with
  // a bound-then-closed socket.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const u16 dead_port = ntohs(addr.sin_port);
  ::close(probe);

  config.workers = {{"127.0.0.1", dead_port}};
  config.max_retries = 0;
  config.backoff_ms = 1.0;
  config.probe_deadline_s = 1.0;
  CampaignResult result;
  std::string error;
  EXPECT_FALSE(sim::fleet::run_fleet_campaign(config, small_spec(), &result,
                                              &error));
  EXPECT_NE(error.find("worker"), std::string::npos) << error;
}

TEST(Fleet, BadTokenIsADeterministicRejectionNotARetry) {
  sim::ServiceConfig locked;
  locked.auth_tokens = {"right-token"};
  WorkerDaemon worker(locked);

  sim::fleet::FleetConfig config = fleet_config({&worker});
  config.auth_token = "wrong-token";
  CampaignResult result;
  std::string error;
  EXPECT_FALSE(sim::fleet::run_fleet_campaign(config, small_spec(), &result,
                                              &error));
  EXPECT_NE(error.find("401"), std::string::npos) << error;

  // Same fleet, right token: the campaign goes through.
  config.auth_token = "right-token";
  CampaignSpec spec = small_spec();
  spec.workloads = {"gcc"};
  spec.replicas = 2;
  ASSERT_TRUE(sim::fleet::run_fleet_campaign(config, spec, &result, &error))
      << error;
  EXPECT_EQ(result.json(), sim::run_campaign(spec).json());
}

TEST(Fleet, RejectsSpecsThatCannotTravelTheWire) {
  WorkerDaemon worker;
  CampaignSpec spec = small_spec();
  sim::CampaignProgram program;
  program.name = "inline";
  spec.programs.push_back(program);
  CampaignResult result;
  std::string error;
  EXPECT_FALSE(sim::fleet::run_fleet_campaign(fleet_config({&worker}), spec,
                                              &result, &error));
  EXPECT_NE(error.find("program"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Observability (DESIGN.md §17): probe resilience, trace propagation,
// metrics federation and the per-shard progress rollup.

/// An ephemeral loopback port with nothing listening: bind, read back the
/// assigned port, close.
u16 closed_loopback_port() {
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const u16 port = ntohs(addr.sin_port);
  ::close(probe);
  return port;
}

usize count_substrings(const std::string& haystack, const std::string& needle) {
  usize count = 0;
  for (usize at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Fleet, ProbeRidesOutTransientRefusalsBeforeDeclaringDeath) {
  // Regression: the transport layer only retries refused connects and
  // 429s, so a worker answering 503 (draining, backlog hiccup) used to be
  // declared dead on its first word. The probe must retry any non-200.
  std::atomic<int> calls{0};
  std::atomic<bool> healing{true};
  http::Server server([&](const http::Request&) {
    http::Response response;
    response.status = healing.load() && ++calls > 2 ? 200 : 503;
    response.body = response.status == 200 ? "ok" : "draining";
    return response;
  });
  ASSERT_TRUE(server.listen("127.0.0.1", 0));
  std::thread serve_thread([&server] { server.serve(); });

  sim::fleet::FleetConfig config;
  config.max_retries = 2;
  config.backoff_ms = 1.0;
  config.backoff_max_ms = 4.0;
  config.probe_deadline_s = 2.0;
  const sim::fleet::Worker worker{"127.0.0.1", server.port()};

  // Two 503s, then the worker recovers: alive on the third attempt.
  int attempts = 0;
  EXPECT_TRUE(sim::fleet::probe_worker(worker, config, &attempts));
  EXPECT_EQ(attempts, 3);

  // A worker that keeps refusing exhausts the whole budget before the
  // death verdict.
  healing.store(false);
  attempts = 0;
  EXPECT_FALSE(sim::fleet::probe_worker(worker, config, &attempts));
  EXPECT_EQ(attempts, config.max_retries + 1);

  server.request_stop();
  http::request("127.0.0.1", server.port(), "GET", "/wake");
  serve_thread.join();
}

TEST(Fleet, TraceContextReachesEveryWorkerRequestAndTheTimeline) {
  // A worker daemon wrapped so every X-Reese-Trace header is captured.
  sim::SimulationService service{sim::ServiceConfig{}};
  std::mutex seen_mutex;
  std::vector<std::string> seen;
  http::Server server([&](const http::Request& request) {
    const auto it = request.headers.find(http::kTraceHeaderKey);
    if (it != request.headers.end()) {
      std::lock_guard<std::mutex> lock(seen_mutex);
      seen.push_back(it->second);
    }
    return service.handle(request);
  });
  ASSERT_TRUE(server.listen("127.0.0.1", 0));
  std::thread serve_thread([&server] { server.serve(); });

  sim::fleet::FleetConfig config;
  config.workers = {{"127.0.0.1", server.port()}};
  config.max_retries = 1;
  config.backoff_ms = 5.0;
  config.backoff_max_ms = 20.0;
  config.poll_interval_ms = 5.0;
  config.probe_deadline_s = 2.0;
  core::StringTraceSink sink;
  config.trace_sink = &sink;

  CampaignResult result;
  std::string error;
  ASSERT_TRUE(sim::fleet::run_fleet_campaign(config, small_spec(), &result,
                                             &error))
      << error;

  server.request_stop();
  http::request("127.0.0.1", server.port(), "GET", "/wake");
  serve_thread.join();
  service.drain();

  // Every worker request carried the campaign's single trace id, and each
  // shard attempt travelled under its own span.
  ASSERT_FALSE(seen.empty());
  std::set<std::string> trace_ids;
  std::set<std::string> spans;
  for (const std::string& value : seen) {
    http::TraceContext context;
    ASSERT_TRUE(http::TraceContext::parse(value, &context)) << value;
    trace_ids.insert(value.substr(0, 16));
    spans.insert(value.substr(17));
  }
  EXPECT_EQ(trace_ids.size(), 1u) << "one campaign = one trace id";
  EXPECT_GE(spans.size(), 2u) << "each shard attempt mints a fresh span";

  // The timeline names the fleet process and carries the full slice
  // anatomy with balanced flow arrows.
  const std::string trace = sink.str();
  EXPECT_NE(trace.find("reese-fleet"), std::string::npos);
  EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(trace.find("dispatch r["), std::string::npos);
  EXPECT_NE(trace.find("run r["), std::string::npos);
  EXPECT_NE(trace.find("merge r["), std::string::npos);
  EXPECT_NE(trace.find("dispatch-to-merge"), std::string::npos);
  EXPECT_EQ(count_substrings(trace, "\"ph\":\"s\""),
            count_substrings(trace, "\"ph\":\"f\""))
      << "every flow start needs a finish";
}

TEST(Fleet, FederatedMetricsAreDeterministicAndReportDeadWorkers) {
  WorkerDaemon alpha;
  WorkerDaemon beta;
  const u16 dead_port = closed_loopback_port();

  sim::fleet::FleetConfig config;
  config.workers = {alpha.address(), beta.address(),
                    {"127.0.0.1", dead_port}};
  config.request_deadline_s = 2.0;

  metrics::Registry first;
  metrics::Registry second;
  std::string error;
  ASSERT_TRUE(sim::fleet::collect_fleet_metrics(config, &first, &error))
      << error;
  ASSERT_TRUE(sim::fleet::collect_fleet_metrics(config, &second, &error))
      << error;
  const std::string text = first.prometheus();
  EXPECT_EQ(text, second.prometheus())
      << "idle fleet scrapes must be byte-identical";

  // Liveness gauges: reachable workers up, the dead one down — and the
  // dead worker is a gauge, not a federation error.
  EXPECT_NE(text.find(format("reese_fleet_worker_up{worker=\"127.0.0.1:%u\"}"
                             " 1",
                             alpha.address().port)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(format("reese_fleet_worker_up{worker=\"127.0.0.1:%u\"}"
                             " 0",
                             dead_port)),
            std::string::npos)
      << text;

  // Every live worker's series survive under its own worker label.
  EXPECT_NE(text.find(format("worker=\"127.0.0.1:%u\"",
                             beta.address().port)),
            std::string::npos);

  // Two live workers federate a subset of what three would: the merged
  // export only grows with the fleet.
  sim::fleet::FleetConfig smaller = config;
  smaller.workers = {alpha.address(), beta.address()};
  metrics::Registry pair;
  ASSERT_TRUE(sim::fleet::collect_fleet_metrics(smaller, &pair, &error))
      << error;
  EXPECT_LT(pair.prometheus().size(), text.size());
  EXPECT_EQ(pair.size() + 1, first.size())
      << "the third worker only adds its up gauge while idle";
}

TEST(Fleet, ShardProgressRollupIsMonotonicAcrossRedispatch) {
  // A campaign runner that replays a worker death: the shard reports 5
  // cells done, is re-dispatched (fresh attempt restarts at zero), then
  // finishes elsewhere. The service's rollup must never move backwards.
  std::promise<void> regressed;
  std::promise<void> resume;
  sim::ServiceConfig config;
  config.workers = 1;
  config.campaign_runner = [&](const CampaignSpec& spec,
                               CampaignResult* result, std::string* error) {
    (void)error;
    sim::ShardProgressUpdate update;
    update.shard_index = 0;
    update.replica_begin = 0;
    update.replicas = 5;
    update.cells_total = 10;
    update.state = "dispatched";
    update.worker = "a:1";
    update.dispatches = 1;
    spec.shard_progress(update);
    update.state = "running";
    update.cells_done = 5;
    update.committed = 500;
    update.kips = 12.5;
    spec.shard_progress(update);
    // The worker dies; the re-dispatch announcement carries zeros.
    update.state = "re-dispatched";
    update.worker.clear();
    update.cells_done = 0;
    update.committed = 0;
    update.kips = 0.0;
    update.dispatches = 2;
    spec.shard_progress(update);
    regressed.set_value();
    resume.get_future().wait();
    update.state = "running";
    update.worker = "b:2";
    update.cells_done = 3;
    spec.shard_progress(update);
    update.state = "merged";
    update.cells_done = 10;
    update.committed = 1200;
    spec.shard_progress(update);
    *result = run_campaign(spec);
    return true;
  };
  sim::SimulationService service(config);

  http::Request submit;
  submit.method = "POST";
  submit.path = "/v1/campaigns";
  submit.body = R"({"variants": ["baseline"], "workloads": ["gcc"],)"
                R"( "replicas": 2, "instructions": 2000, "seed": 7,)"
                R"( "jobs": 1})";
  ASSERT_EQ(service.handle(submit).status, 202);

  http::Request progress;
  progress.method = "GET";
  progress.path = "/v1/jobs/1/progress";

  // Mid-regression snapshot: the re-dispatch is visible, the counters are
  // not — cells_done holds at the pre-death maximum.
  regressed.get_future().wait();
  std::string body = service.handle(progress).body;
  EXPECT_NE(body.find("\"state\": \"re-dispatched\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"cells_done\": 5"), std::string::npos) << body;
  EXPECT_NE(body.find("\"dispatches\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"worker\": \"a:1\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"kips\": 12.500"), std::string::npos) << body;

  resume.set_value();
  service.drain();

  body = service.handle(progress).body;
  EXPECT_NE(body.find("\"state\": \"merged\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"cells_done\": 10"), std::string::npos) << body;
  EXPECT_NE(body.find("\"worker\": \"b:2\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"dispatches\": 2"), std::string::npos) << body;
}

TEST(Fleet, WorkerEchoesAnInheritedTraceOnStatusAndProgress) {
  sim::SimulationService service{sim::ServiceConfig{}};
  const std::string context = "00000000deadbeef-0000000000000001";

  http::Request submit;
  submit.method = "POST";
  submit.path = "/v1/campaigns";
  submit.headers[http::kTraceHeaderKey] = context;
  submit.body = R"({"variants": ["baseline"], "workloads": ["gcc"],)"
                R"( "replicas": 1, "instructions": 2000, "jobs": 1})";
  const http::Response accepted = service.handle(submit);
  ASSERT_EQ(accepted.status, 202);
  EXPECT_NE(accepted.body.find("\"trace\": \"" + context + "\""),
            std::string::npos)
      << accepted.body;

  service.drain();
  for (const char* path : {"/v1/jobs/1", "/v1/jobs/1/progress"}) {
    http::Request get;
    get.method = "GET";
    get.path = path;
    const http::Response response = service.handle(get);
    ASSERT_EQ(response.status, 200) << path;
    EXPECT_NE(response.body.find("\"trace\": \"" + context + "\""),
              std::string::npos)
        << path << ": " << response.body;
  }

  // No header, no trace field: the echo is strictly inherited.
  http::Request bare = submit;
  bare.headers.clear();
  const http::Response second = service.handle(bare);
  ASSERT_EQ(second.status, 202);
  EXPECT_EQ(second.body.find("\"trace\""), std::string::npos) << second.body;
}

// ---------------------------------------------------------------------------
// HTTP client behaviours the fleet depends on.

TEST(HttpClient, KeepAliveReusesOneConnection) {
  std::atomic<int> handled{0};
  http::Server server([&](const http::Request& request) {
    ++handled;
    http::Response response;
    response.status = 200;
    response.body = request.path;
    return response;
  });
  ASSERT_TRUE(server.listen("127.0.0.1", 0));
  std::thread serve_thread([&server] { server.serve(); });

  {
    http::Client client("127.0.0.1", server.port());
    for (int i = 0; i < 10; ++i) {
      const http::Response response =
          client.request("GET", format("/ping/%d", i));
      ASSERT_EQ(response.status, 200);
      EXPECT_EQ(response.body, format("/ping/%d", i));
    }
    EXPECT_EQ(client.requests_sent(), 10u);
    EXPECT_EQ(client.connects(), 1u)
        << "keep-alive must reuse one TCP connection";
  }
  EXPECT_EQ(handled.load(), 10);
  EXPECT_EQ(server.connections_accepted(), 1u);

  server.request_stop();
  http::request("127.0.0.1", server.port(), "GET", "/wake");
  serve_thread.join();
}

TEST(HttpClient, DeadlineCoversASlowWriterNotJustTheFirstByte) {
  // A raw server that answers promptly but trickles the body forever:
  // a per-recv timeout never fires, only a total-request deadline does.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const u16 port = ntohs(addr.sin_port);

  std::atomic<bool> done{false};
  std::thread trickler([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    char scratch[1024];
    (void)::recv(fd, scratch, sizeof(scratch), 0);
    const char head[] =
        "HTTP/1.1 200 OK\r\nContent-Length: 1000000\r\n\r\n";
    (void)::send(fd, head, sizeof(head) - 1, MSG_NOSIGNAL);
    // One byte every 50ms: each recv succeeds, the response never ends.
    while (!done.load()) {
      if (::send(fd, "x", 1, MSG_NOSIGNAL) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::close(fd);
  });

  http::RequestOptions options;
  options.deadline_s = 0.5;
  const auto start = std::chrono::steady_clock::now();
  const http::Response response =
      http::request("127.0.0.1", port, "GET", "/slow", "", options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.status, 0) << response.body;
  EXPECT_LT(elapsed, 5.0) << "deadline did not bound the slow writer";
  EXPECT_GE(elapsed, 0.4);

  done.store(true);
  ::close(listen_fd);
  trickler.join();
}

TEST(HttpClient, RetriesRideOut429Backpressure) {
  std::atomic<int> calls{0};
  http::Server server([&](const http::Request&) {
    http::Response response;
    response.status = ++calls <= 2 ? 429 : 200;
    response.body = response.status == 200 ? "ok" : "busy";
    return response;
  });
  ASSERT_TRUE(server.listen("127.0.0.1", 0));
  std::thread serve_thread([&server] { server.serve(); });

  // Without retries: the 429 surfaces, exactly one call.
  http::Response response =
      http::request("127.0.0.1", server.port(), "GET", "/job");
  EXPECT_EQ(response.status, 429);
  EXPECT_EQ(calls.load(), 1);

  // With retries: two 429s absorbed, the third call lands.
  http::RequestOptions options;
  options.max_retries = 4;
  options.backoff_ms = 1.0;
  options.backoff_max_ms = 4.0;
  calls = 0;
  response = http::request("127.0.0.1", server.port(), "GET", "/job", "",
                           options);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok");
  EXPECT_EQ(calls.load(), 3);

  server.request_stop();
  http::request("127.0.0.1", server.port(), "GET", "/wake");
  serve_thread.join();
}

TEST(HttpClient, RetriesRideOutAServerRestartOnTheSamePort) {
  sim::SimulationService service;
  auto handler = [&service](const http::Request& request) {
    return service.handle(request);
  };
  u16 port = 0;
  {
    // First incarnation binds an ephemeral port, then dies.
    http::Server first(handler);
    ASSERT_TRUE(first.listen("127.0.0.1", 0));
    port = first.port();
    std::thread serve_thread([&first] { first.serve(); });
    first.request_stop();
    http::request("127.0.0.1", port, "GET", "/v1/healthz");
    serve_thread.join();
  }

  // The daemon comes back on the same port after ~200ms, as a restarted
  // reesed would. A retrying client issued during the outage must land.
  http::Server second(handler);
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ASSERT_TRUE(second.listen("127.0.0.1", port));
    second.serve();
  });

  http::RequestOptions options;
  options.max_retries = 10;
  options.backoff_ms = 50.0;
  options.backoff_max_ms = 200.0;
  const http::Response response =
      http::request("127.0.0.1", port, "GET", "/v1/healthz", "", options);
  EXPECT_EQ(response.status, 200)
      << "retries should have bridged the restart: " << response.body;

  second.request_stop();
  http::request("127.0.0.1", port, "GET", "/v1/healthz");
  restarter.join();
}

}  // namespace
}  // namespace reese

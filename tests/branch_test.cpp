// Branch-prediction tests: each predictor must learn the patterns it is
// designed for; BTB and RAS must behave as tagged structures with repair.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "branch/predictor.h"
#include "common/rng.h"

namespace reese::branch {
namespace {

/// Run `pattern(i)` outcomes through `predictor` at a fixed PC; return the
/// accuracy over the last half (after warmup).
double accuracy(DirectionPredictor& predictor, Addr pc, usize trials,
                const std::function<bool(usize)>& pattern) {
  usize correct = 0;
  usize measured = 0;
  for (usize i = 0; i < trials; ++i) {
    const bool actual = pattern(i);
    const BranchPrediction prediction = predictor.predict(pc);
    if (i >= trials / 2) {
      ++measured;
      if (prediction.taken == actual) ++correct;
    }
    predictor.update(pc, actual, prediction.meta);
    // Mirror the pipeline contract: a misprediction rewinds speculative
    // global history and shifts in the actual outcome.
    if (prediction.taken != actual) predictor.repair(prediction.meta, actual);
  }
  return static_cast<double>(correct) / static_cast<double>(measured);
}

TEST(Static, AlwaysSame) {
  StaticPredictor taken(true);
  StaticPredictor not_taken(false);
  EXPECT_TRUE(taken.predict(0x1000).taken);
  EXPECT_FALSE(not_taken.predict(0x1000).taken);
}

TEST(Bimodal, LearnsBias) {
  BimodalPredictor predictor;
  EXPECT_GT(accuracy(predictor, 0x1000, 200, [](usize) { return true; }),
            0.99);
  BimodalPredictor predictor2;
  EXPECT_GT(accuracy(predictor2, 0x1000, 200, [](usize) { return false; }),
            0.99);
}

TEST(Bimodal, MostlyTakenBias) {
  BimodalPredictor predictor;
  // 7-of-8 taken: bimodal should stay saturated-taken, ~87.5% accuracy.
  const double acc =
      accuracy(predictor, 0x1000, 800, [](usize i) { return i % 8 != 0; });
  EXPECT_GT(acc, 0.85);
}

TEST(Bimodal, CannotLearnAlternation) {
  BimodalPredictor predictor;
  const double acc =
      accuracy(predictor, 0x1000, 400, [](usize i) { return i % 2 == 0; });
  EXPECT_LT(acc, 0.7);  // 2-bit counters thrash on alternation
}

TEST(Gshare, LearnsAlternation) {
  GsharePredictor predictor(12);
  const double acc =
      accuracy(predictor, 0x1000, 800, [](usize i) { return i % 2 == 0; });
  EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsShortPeriodicPatterns) {
  for (usize period : {3u, 4u, 5u, 7u}) {
    GsharePredictor predictor(12);
    const double acc = accuracy(predictor, 0x2000, 2000, [period](usize i) {
      return (i % period) == 0;
    });
    EXPECT_GT(acc, 0.90) << "period " << period;
  }
}

TEST(Gshare, RandomIsHard) {
  GsharePredictor predictor(12);
  SplitMix64 rng(3);
  std::vector<bool> outcomes;
  for (int i = 0; i < 2000; ++i) outcomes.push_back((rng.next() & 1) != 0);
  const double acc = accuracy(predictor, 0x3000, outcomes.size(),
                              [&](usize i) { return outcomes[i]; });
  EXPECT_LT(acc, 0.65);
}

TEST(Gshare, RepairRewindsHistory) {
  GsharePredictor predictor(8);
  // Drive some history in.
  for (int i = 0; i < 10; ++i) {
    const BranchPrediction p = predictor.predict(0x1000);
    predictor.update(0x1000, true, p.meta);
  }
  const u64 before = predictor.checkpoint();
  const BranchPrediction p = predictor.predict(0x1000);  // speculative shift
  EXPECT_NE(predictor.checkpoint(), before);
  // Mispredicted: repair with the actual outcome.
  predictor.repair(p.meta, !p.taken);
  const u64 expected = ((before << 1) | (p.taken ? 0 : 1)) & 0xFF;
  EXPECT_EQ(predictor.checkpoint(), expected);
}

TEST(Local, LearnsPerBranchPeriodicity) {
  LocalPredictor predictor;
  const double acc =
      accuracy(predictor, 0x4000, 2000, [](usize i) { return i % 3 == 0; });
  EXPECT_GT(acc, 0.9);
}

TEST(Local, SeparateBranchesSeparateHistories) {
  LocalPredictor predictor;
  // Interleave two branches with opposite biases at different PCs.
  usize correct = 0;
  for (usize i = 0; i < 400; ++i) {
    const Addr pc = (i % 2 == 0) ? 0x1000 : 0x2000;
    const bool actual = (i % 2 == 0);
    const BranchPrediction p = predictor.predict(pc);
    if (i >= 200 && p.taken == actual) ++correct;
    predictor.update(pc, actual, p.meta);
  }
  EXPECT_GT(static_cast<double>(correct) / 200.0, 0.95);
}

TEST(Tournament, AtLeastAsGoodAsComponentsOnMixes) {
  // Pattern that gshare handles and bimodal does not.
  TournamentPredictor tournament;
  const double acc = accuracy(tournament, 0x5000, 2000,
                              [](usize i) { return i % 2 == 0; });
  EXPECT_GT(acc, 0.9);

  // Strong bias: both fine, chooser should not hurt.
  TournamentPredictor tournament2;
  const double acc2 =
      accuracy(tournament2, 0x6000, 800, [](usize) { return true; });
  EXPECT_GT(acc2, 0.97);
}

TEST(Factory, MakesEveryKind) {
  for (PredictorKind kind :
       {PredictorKind::kNotTaken, PredictorKind::kTaken, PredictorKind::kBtfn,
        PredictorKind::kBimodal, PredictorKind::kGshare, PredictorKind::kLocal,
        PredictorKind::kTournament}) {
    auto predictor = make_predictor(kind);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
    EXPECT_NE(predictor_kind_name(kind), nullptr);
  }
}

// --- BTB -----------------------------------------------------------------------

TEST(BtbTest, MissThenHit) {
  Btb btb(64, 4);
  Addr target = 0;
  EXPECT_FALSE(btb.lookup(0x1000, &target));
  btb.update(0x1000, 0x2000);
  ASSERT_TRUE(btb.lookup(0x1000, &target));
  EXPECT_EQ(target, 0x2000u);
}

TEST(BtbTest, UpdateOverwritesTarget) {
  Btb btb(64, 4);
  btb.update(0x1000, 0x2000);
  btb.update(0x1000, 0x3000);
  Addr target = 0;
  ASSERT_TRUE(btb.lookup(0x1000, &target));
  EXPECT_EQ(target, 0x3000u);
}

TEST(BtbTest, TagsDistinguishAliases) {
  Btb btb(16, 1);  // 16 sets, direct-mapped
  btb.update(0x1000, 0xAAAA);
  // Same set (stride 16*4), different tag.
  btb.update(0x1000 + 16 * 4, 0xBBBB);
  Addr target = 0;
  EXPECT_FALSE(btb.lookup(0x1000, &target));  // evicted
  ASSERT_TRUE(btb.lookup(0x1000 + 16 * 4, &target));
  EXPECT_EQ(target, 0xBBBBu);
}

TEST(BtbTest, LruWithinSet) {
  Btb btb(4, 2);  // 2 sets, 2 ways
  btb.update(0x1000, 1);             // set 0
  btb.update(0x1000 + 8, 2);         // set 0 (stride 2 sets * 4 = 8)
  Addr target = 0;
  btb.lookup(0x1000, &target);       // touch first
  btb.update(0x1000 + 16, 3);        // set 0, evicts LRU = second
  EXPECT_TRUE(btb.lookup(0x1000, &target));
  EXPECT_FALSE(btb.lookup(0x1000 + 8, &target));
}

// --- RAS -----------------------------------------------------------------------

TEST(Ras, PushPopLifo) {
  ReturnAddressStack ras(8);
  ras.push(0x100);
  ras.push(0x200);
  EXPECT_EQ(ras.pop(), 0x200u);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsAtDepth) {
  ReturnAddressStack ras(2);
  ras.push(1);
  ras.push(2);
  ras.push(3);  // overwrites 1
  EXPECT_EQ(ras.pop(), 3u);
  EXPECT_EQ(ras.pop(), 2u);
  EXPECT_EQ(ras.pop(), 3u);  // wrapped back around
}

TEST(Ras, CheckpointRepairsSingleAction) {
  ReturnAddressStack ras(8);
  ras.push(0x100);
  const auto checkpoint = ras.checkpoint();
  ras.push(0x999);  // wrong-path push
  ras.restore(checkpoint);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, CheckpointRepairsWrongPathPop) {
  ReturnAddressStack ras(8);
  ras.push(0x100);
  ras.push(0x200);
  const auto checkpoint = ras.checkpoint();
  (void)ras.pop();  // wrong-path pop
  ras.restore(checkpoint);
  EXPECT_EQ(ras.pop(), 0x200u);
  EXPECT_EQ(ras.pop(), 0x100u);
}

}  // namespace
}  // namespace reese::branch

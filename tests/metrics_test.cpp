// Metrics registry tests (common/metrics.h): naming discipline, label-set
// identity, lock-free mutation under contention, and both serializations
// (Prometheus text exposition, JSON).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "json_checker.h"

namespace reese {
namespace {

using metrics::Labels;
using metrics::Registry;

TEST(Metrics, NamingConventionIsEnforced) {
  EXPECT_TRUE(metrics::valid_metric_name("reese_core_cycles_total"));
  EXPECT_TRUE(metrics::valid_metric_name("reese_service_queue_depth"));
  EXPECT_FALSE(metrics::valid_metric_name("core_cycles_total"));  // no prefix
  EXPECT_FALSE(metrics::valid_metric_name("reese_Core_cycles"));  // upper case
  EXPECT_FALSE(metrics::valid_metric_name("reese_core-cycles"));  // dash
  EXPECT_FALSE(metrics::valid_metric_name(""));

  EXPECT_TRUE(metrics::valid_label_name("kind"));
  EXPECT_TRUE(metrics::valid_label_name("exec_class"));
  EXPECT_FALSE(metrics::valid_label_name("9kind"));
  EXPECT_FALSE(metrics::valid_label_name("kind-of"));

  Registry registry;
  // Counters must end in _total; gauges and histograms must not.
  EXPECT_EQ(registry.counter("reese_test_things"), nullptr);
  EXPECT_NE(registry.counter("reese_test_things_total"), nullptr);
  EXPECT_EQ(registry.gauge("reese_test_depth_total"), nullptr);
  EXPECT_NE(registry.gauge("reese_test_depth"), nullptr);
  EXPECT_EQ(registry.histogram("reese_test_latency_total", {1.0}), nullptr);
  EXPECT_NE(registry.histogram("reese_test_latency", {1.0}), nullptr);
  // Invalid label names are refused at registration.
  EXPECT_EQ(registry.counter("reese_test_labeled_total", {{"bad-label", "x"}}),
            nullptr);
}

TEST(Metrics, LabelSetsAreDistinctSeries) {
  Registry registry;
  metrics::Counter* a =
      registry.counter("reese_test_cells_total", {{"kind", "experiment"}});
  metrics::Counter* b =
      registry.counter("reese_test_cells_total", {{"kind", "campaign"}});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  // Same (name, labels) -> the same stable handle.
  EXPECT_EQ(registry.counter("reese_test_cells_total",
                             {{"kind", "experiment"}}),
            a);
  a->inc(3);
  b->inc();
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(registry.size(), 2u);
  // A name is owned by its first type: re-registering as a gauge fails.
  EXPECT_EQ(registry.gauge("reese_test_cells_total"), nullptr);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry registry;
  metrics::Gauge* gauge = registry.gauge("reese_test_level");
  ASSERT_NE(gauge, nullptr);
  gauge->set(2.5);
  gauge->add(1.25);
  gauge->add(-0.75);
  EXPECT_DOUBLE_EQ(gauge->value(), 3.0);
}

TEST(Metrics, HistogramObserveAndBulkImport) {
  Registry registry;
  metrics::HistogramMetric* histogram =
      registry.histogram("reese_test_cycles", {1.0, 4.0, 16.0});
  ASSERT_NE(histogram, nullptr);
  histogram->observe(0.5);   // bucket 0 (le 1)
  histogram->observe(4.0);   // bucket 1 (le 4, boundary is inclusive)
  histogram->observe(100.0); // +Inf
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 104.5);
  const std::vector<u64> buckets = histogram->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);

  // Bulk import: O(1) mirroring of an external distribution, including a
  // sum-only charge with a zero count.
  histogram->add_bucket(2, 10, 100.0);
  histogram->add_bucket(3, 0, 7.5);
  EXPECT_EQ(histogram->count(), 13u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 212.0);
  EXPECT_EQ(histogram->bucket_counts()[2], 10u);

  // Mismatched or invalid bounds on re-registration are refused.
  EXPECT_EQ(registry.histogram("reese_test_cycles", {1.0, 2.0}), nullptr);
  EXPECT_EQ(registry.histogram("reese_test_bad", {}), nullptr);
  EXPECT_EQ(registry.histogram("reese_test_bad", {3.0, 2.0}), nullptr);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr u64 kIncrements = 20'000;
  metrics::Counter* counter = registry.counter("reese_test_contended_total");
  metrics::Gauge* gauge = registry.gauge("reese_test_contended");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(gauge, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, gauge] {
      for (u64 i = 0; i < kIncrements; ++i) {
        counter->inc();
        gauge->add(1.0);
        // Re-registration from many threads must return the same handle.
        EXPECT_EQ(registry.counter("reese_test_contended_total"), counter);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kIncrements);
  EXPECT_DOUBLE_EQ(gauge->value(),
                   static_cast<double>(kThreads * kIncrements));
}

TEST(Metrics, PrometheusExposition) {
  Registry registry;
  registry.counter("reese_test_jobs_total", {{"kind", "experiment"}},
                   "Jobs run")->inc(5);
  registry.counter("reese_test_jobs_total", {{"kind", "campaign"}})->inc(2);
  registry.gauge("reese_test_depth", {}, "Queue depth")->set(3.5);
  metrics::HistogramMetric* histogram = registry.histogram(
      "reese_test_latency", {1.0, 8.0}, {}, "Latency in cycles");
  histogram->observe(0.5);
  histogram->observe(2.0);
  histogram->observe(99.0);

  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("# HELP reese_test_jobs_total Jobs run"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE reese_test_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_jobs_total{kind=\"campaign\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_jobs_total{kind=\"experiment\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE reese_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("reese_test_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reese_test_latency histogram"),
            std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("reese_test_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_latency_bucket{le=\"8\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_latency_sum 101.5"), std::string::npos);
  EXPECT_NE(text.find("reese_test_latency_count 3"), std::string::npos);
  // Every exposition line is either a comment or "name{labels} value".
  usize lines = 0;
  for (usize start = 0; start < text.size();) {
    usize end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("reese_", 0), 0u) << line;
  }
  EXPECT_GT(lines, 10u);
}

TEST(Metrics, JsonSerializationRoundTrips) {
  Registry registry;
  registry.counter("reese_test_events_total", {{"kind", "squash"}})->inc(7);
  registry.gauge("reese_test_ipc")->set(1.25);
  registry.histogram("reese_test_sep", {2.0, 4.0})->observe(3.0);

  const std::string body = registry.json();
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  const Result<json::Value> parsed = json::parse_json(body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* list = parsed.value().find("metrics");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->array.size(), 3u);
  // snapshot() sorts by name, so the order is deterministic.
  const json::Value& counter = list->array[0];
  EXPECT_EQ(counter.find("name")->string, "reese_test_events_total");
  EXPECT_EQ(counter.find("type")->string, "counter");
  EXPECT_EQ(counter.find("labels")->find("kind")->string, "squash");
  EXPECT_EQ(counter.find("value")->uint_value, 7u);
  const json::Value& gauge = list->array[1];
  EXPECT_EQ(gauge.find("name")->string, "reese_test_ipc");
  EXPECT_DOUBLE_EQ(gauge.find("value")->number, 1.25);
  const json::Value& histogram = list->array[2];
  EXPECT_EQ(histogram.find("type")->string, "histogram");
  EXPECT_EQ(histogram.find("count")->uint_value, 1u);
  ASSERT_EQ(histogram.find("buckets")->array.size(), 3u);
  EXPECT_EQ(histogram.find("buckets")->array[1].uint_value, 1u);
}

// ---------------------------------------------------------------------------
// Federation: merge_from + parse_prometheus (DESIGN.md §17). The
// coordinator scrapes every worker's /v1/metrics, parses the text back to
// samples and folds them into one registry with a worker label; these
// tests pin the merge semantics that make the federated export correct
// and deterministic.

/// A snapshot shaped like a worker's scrape: counter, gauge, histogram.
std::vector<metrics::Sample> worker_snapshot(u64 jobs, double depth,
                                             double latency) {
  Registry registry;
  registry.counter("reese_test_jobs_total", {{"kind", "campaign"}},
                   "Jobs run")->inc(jobs);
  registry.gauge("reese_test_depth", {}, "Queue depth")->set(depth);
  registry.histogram("reese_test_latency", {1.0, 8.0}, {}, "Latency")
      ->observe(latency);
  return registry.snapshot();
}

TEST(Metrics, MergeFromSumsCountersAndSetsGauges) {
  Registry target;
  std::string error;
  const std::vector<metrics::Sample> scrape = worker_snapshot(5, 3.0, 0.5);
  ASSERT_TRUE(target.merge_from(scrape, {}, &error)) << error;
  ASSERT_TRUE(target.merge_from(scrape, {}, &error)) << error;
  const std::vector<metrics::Sample> merged = target.snapshot();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[1].value, 10.0) << "counters must sum on re-merge";
  EXPECT_DOUBLE_EQ(merged[0].value, 3.0) << "gauges must set, not sum";
  EXPECT_EQ(merged[2].count, 2u) << "histogram counts add per bucket";
  EXPECT_DOUBLE_EQ(merged[2].sum, 1.0);
  ASSERT_EQ(merged[2].buckets.size(), 3u);
  EXPECT_EQ(merged[2].buckets[0], 2u);
}

TEST(Metrics, MergeFromKeepsWorkersApartViaExtraLabels) {
  Registry target;
  std::string error;
  ASSERT_TRUE(target.merge_from(worker_snapshot(5, 3.0, 0.5),
                                {{"worker", "a:1"}}, &error))
      << error;
  ASSERT_TRUE(target.merge_from(worker_snapshot(2, 7.0, 9.0),
                                {{"worker", "b:2"}}, &error))
      << error;
  const std::string text = target.prometheus();
  EXPECT_NE(text.find("reese_test_jobs_total{kind=\"campaign\","
                      "worker=\"a:1\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("reese_test_jobs_total{kind=\"campaign\","
                      "worker=\"b:2\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("reese_test_depth{worker=\"a:1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("reese_test_depth{worker=\"b:2\"} 7"),
            std::string::npos);
}

TEST(Metrics, MergeFromExtraLabelWinsACollisionInPlace) {
  // A sample that already carries the federator's label name: the extra
  // value replaces it without reordering the label set (order is series
  // identity).
  Registry source;
  source.counter("reese_test_events_total",
                 {{"worker", "self"}, {"kind", "squash"}})
      ->inc(4);
  Registry target;
  std::string error;
  ASSERT_TRUE(target.merge_from(source.snapshot(), {{"worker", "a:1"}},
                                &error))
      << error;
  const std::vector<metrics::Sample> merged = target.snapshot();
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_EQ(merged[0].labels.size(), 2u);
  EXPECT_EQ(merged[0].labels[0].first, "worker");
  EXPECT_EQ(merged[0].labels[0].second, "a:1") << "extra value must win";
  EXPECT_EQ(merged[0].labels[1].first, "kind");
}

TEST(Metrics, MergeFromRejectsUnmergeableSamples) {
  Registry target;
  target.gauge("reese_test_shape");
  std::string error;

  // Type conflict: the name is already a gauge here.
  Registry counters;
  counters.counter("reese_test_shape_total");
  ASSERT_TRUE(target.merge_from(counters.snapshot(), {}, &error));
  metrics::Sample clash;
  clash.name = "reese_test_shape";
  clash.type = metrics::MetricType::kCounter;
  EXPECT_FALSE(target.merge_from({clash}, {}, &error));
  EXPECT_FALSE(error.empty());

  // Histogram bounds mismatch: refused, not silently misbinned.
  Registry narrow;
  narrow.histogram("reese_test_hist", {1.0, 2.0})->observe(1.5);
  Registry wide;
  wide.histogram("reese_test_hist", {1.0, 4.0})->observe(1.5);
  Registry fed;
  ASSERT_TRUE(fed.merge_from(narrow.snapshot(), {}, &error)) << error;
  EXPECT_FALSE(fed.merge_from(wide.snapshot(), {}, &error));
  EXPECT_NE(error.find("bounds"), std::string::npos) << error;
}

TEST(Metrics, FederatedExportIsOrderInvariantAndDeterministic) {
  // The byte-compare the fleet test leans on: merging workers in any
  // order renders the same exposition text, because snapshot() sorts by
  // (name, labels).
  const std::vector<metrics::Sample> w1 = worker_snapshot(5, 3.0, 0.5);
  const std::vector<metrics::Sample> w2 = worker_snapshot(2, 7.0, 9.0);
  std::string error;
  Registry forward;
  ASSERT_TRUE(forward.merge_from(w1, {{"worker", "a:1"}}, &error));
  ASSERT_TRUE(forward.merge_from(w2, {{"worker", "b:2"}}, &error));
  Registry reverse;
  ASSERT_TRUE(reverse.merge_from(w2, {{"worker", "b:2"}}, &error));
  ASSERT_TRUE(reverse.merge_from(w1, {{"worker", "a:1"}}, &error));
  EXPECT_EQ(forward.prometheus(), reverse.prometheus());
  EXPECT_EQ(forward.json(), reverse.json());
}

TEST(Metrics, ParsePrometheusRoundTripsByteIdentically) {
  Registry original;
  original.counter("reese_test_jobs_total", {{"kind", "experiment"}},
                   "Jobs run")->inc(5);
  original.counter("reese_test_jobs_total", {{"kind", "campaign"}})->inc(2);
  original.gauge("reese_test_depth", {}, "Queue depth")->set(3.5);
  metrics::HistogramMetric* histogram = original.histogram(
      "reese_test_latency", {1.0, 8.0}, {{"path", "p"}}, "Latency");
  histogram->observe(0.5);
  histogram->observe(2.0);
  histogram->observe(99.0);
  // Label values that exercise the escaping path both directions.
  original.counter("reese_test_odd_total",
                   {{"msg", "a \"quoted\"\nline\\done"}})->inc(1);

  const std::string text = original.prometheus();
  std::vector<metrics::Sample> parsed;
  std::string error;
  ASSERT_TRUE(metrics::parse_prometheus(text, &parsed, &error)) << error;
  Registry rebuilt;
  ASSERT_TRUE(rebuilt.merge_from(parsed, {}, &error)) << error;
  EXPECT_EQ(rebuilt.prometheus(), text)
      << "parse -> merge must invert prometheus() byte for byte";
}

TEST(Metrics, ParsePrometheusRejectsWhatItCannotRepresent) {
  std::vector<metrics::Sample> parsed;
  std::string error;
  // A histogram whose cumulative buckets decrease is corrupt.
  EXPECT_FALSE(metrics::parse_prometheus(
      "# TYPE reese_test_h histogram\n"
      "reese_test_h_bucket{le=\"1\"} 5\n"
      "reese_test_h_bucket{le=\"+Inf\"} 3\n"
      "reese_test_h_sum 1\n"
      "reese_test_h_count 3\n",
      &parsed, &error));
  EXPECT_FALSE(error.empty());
  // A histogram without its +Inf bucket cannot be reassembled.
  EXPECT_FALSE(metrics::parse_prometheus(
      "# TYPE reese_test_h histogram\n"
      "reese_test_h_bucket{le=\"1\"} 5\n"
      "reese_test_h_sum 1\n"
      "reese_test_h_count 5\n",
      &parsed, &error));
  // A line that is not "name{labels} value".
  EXPECT_FALSE(metrics::parse_prometheus("what even is this\n", &parsed,
                                         &error));
  EXPECT_FALSE(metrics::parse_prometheus("reese_test_x not_a_number\n",
                                         &parsed, &error));
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.gauge("reese_test_z");
  registry.counter("reese_test_a_total")->inc();
  registry.counter("reese_test_m_total", {{"w", "li"}});
  registry.counter("reese_test_m_total", {{"w", "gcc"}});
  const std::vector<metrics::Sample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "reese_test_a_total");
  EXPECT_EQ(samples[1].name, "reese_test_m_total");
  EXPECT_EQ(samples[1].labels[0].second, "gcc");  // labels sort within name
  EXPECT_EQ(samples[2].labels[0].second, "li");
  EXPECT_EQ(samples[3].name, "reese_test_z");
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
}

}  // namespace
}  // namespace reese

// Structured event log tests (common/log.h): exact line bytes under an
// injected clock, level filtering, field rendering/escaping, the
// reese_fleet_events_total counter, file sinks, and serialization under
// concurrent emitters.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "json_checker.h"

namespace reese {
namespace {

using log::Field;
using log::Level;
using log::Logger;

/// A logger frozen at a fixed instant, writing into `capture`.
void freeze(Logger* logger, std::string* capture, double at = 1234.5) {
  logger->set_clock([at] { return at; });
  logger->set_capture(capture);
}

TEST(Log, LevelNamesRoundTrip) {
  EXPECT_STREQ(log::level_name(Level::kDebug), "debug");
  EXPECT_STREQ(log::level_name(Level::kError), "error");
  Level level;
  ASSERT_TRUE(log::level_from_name("warn", &level));
  EXPECT_EQ(level, Level::kWarn);
  ASSERT_TRUE(log::level_from_name("debug", &level));
  EXPECT_EQ(level, Level::kDebug);
  EXPECT_FALSE(log::level_from_name("verbose", &level));
  EXPECT_FALSE(log::level_from_name("", &level));
}

TEST(Log, EmitsExactJsonLines) {
  Logger logger;
  std::string capture;
  freeze(&logger, &capture);
  logger.info("worker_dead", "worker 127.0.0.1:9 unreachable",
              {log::field("worker", "127.0.0.1:9"),
               log::field("shard", static_cast<u64>(3)),
               log::field("kips", 12.5),
               log::field("cancelled", false)});
  EXPECT_EQ(capture,
            "{\"ts\": 1234.500000, \"level\": \"info\", "
            "\"kind\": \"worker_dead\", "
            "\"msg\": \"worker 127.0.0.1:9 unreachable\", "
            "\"worker\": \"127.0.0.1:9\", \"shard\": 3, "
            "\"kips\": 12.500000, \"cancelled\": false}\n");
  // Every line is one standalone JSON object.
  EXPECT_TRUE(JsonChecker(capture).valid()) << capture;
}

TEST(Log, EscapesHostileMessagesAndFieldValues) {
  Logger logger;
  std::string capture;
  freeze(&logger, &capture);
  logger.warn("config",
              "a \"quoted\"\nmessage\\with\tcontrol\x01" "chars",
              {log::field("path", "/tmp/\"log\".json")});
  ASSERT_EQ(capture.find('\n'), capture.size() - 1)
      << "embedded newlines must be escaped, one event = one line";
  EXPECT_TRUE(JsonChecker(capture).valid()) << capture;
  EXPECT_NE(capture.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(capture.find("\\u0001"), std::string::npos);
}

TEST(Log, LevelFilterDropsQuietly) {
  Logger logger;
  std::string capture;
  freeze(&logger, &capture);
  EXPECT_EQ(logger.level(), Level::kInfo) << "default level is info";
  logger.debug("noise", "not emitted");
  EXPECT_TRUE(capture.empty());
  EXPECT_EQ(logger.events_written(), 0u);

  logger.set_level(Level::kError);
  logger.info("still_noise", "not emitted");
  logger.error("fatal", "emitted");
  EXPECT_EQ(logger.events_written(), 1u);
  EXPECT_NE(capture.find("\"kind\": \"fatal\""), std::string::npos);

  logger.set_level(Level::kDebug);
  logger.debug("now_loud", "emitted");
  EXPECT_EQ(logger.events_written(), 2u);
}

TEST(Log, EveryEventBumpsTheKindCounter) {
  Logger logger;
  std::string capture;
  freeze(&logger, &capture);
  metrics::Registry registry;
  logger.set_registry(&registry);
  EXPECT_EQ(logger.registry(), &registry);
  logger.info("shard_dispatch", "one");
  logger.info("shard_dispatch", "two");
  logger.info("shard_merged", "three");
  logger.debug("dropped", "below the level filter: not counted");
  logger.set_registry(nullptr);
  logger.info("untracked", "after detach: not counted");

  metrics::Counter* dispatch = registry.counter(
      "reese_fleet_events_total", {{"kind", "shard_dispatch"}});
  metrics::Counter* merged = registry.counter(
      "reese_fleet_events_total", {{"kind", "shard_merged"}});
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(dispatch->value(), 2u);
  EXPECT_EQ(merged->value(), 1u);
  EXPECT_EQ(registry.size(), 2u) << "dropped/detached events add no series";
}

TEST(Log, FileSinkAppendsAcrossReopen) {
  char path[] = "/tmp/reese_log_test_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);

  Logger logger;
  logger.set_clock([] { return 1.0; });
  ASSERT_TRUE(logger.open_file(path));
  logger.info("first", "one");
  // Reopening the same path (a restarted daemon) must append, not clobber.
  ASSERT_TRUE(logger.open_file(path));
  logger.info("second", "two");

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"kind\": \"first\""), std::string::npos);
  EXPECT_NE(content.str().find("\"kind\": \"second\""), std::string::npos);

  EXPECT_FALSE(logger.open_file("/no/such/dir/event.log"))
      << "an unopenable path must fail without losing the current sink";
  logger.info("third", "still landing in the original file");
  std::ifstream again(path);
  std::stringstream later;
  later << again.rdbuf();
  EXPECT_NE(later.str().find("\"kind\": \"third\""), std::string::npos);
  ::unlink(path);
}

TEST(Log, ConcurrentEmittersNeverInterleaveWithinALine) {
  Logger logger;
  std::string capture;
  freeze(&logger, &capture);
  constexpr int kThreads = 8;
  constexpr int kEvents = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kEvents; ++i) {
        logger.info("stress", "event",
                    {log::field("thread", t), log::field("i", i)});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(logger.events_written(),
            static_cast<u64>(kThreads) * kEvents);
  // Each line parses on its own: interleaved writes would corrupt one.
  usize lines = 0;
  std::istringstream stream(capture);
  std::string line;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
  }
  EXPECT_EQ(lines, static_cast<usize>(kThreads) * kEvents);
}

}  // namespace
}  // namespace reese

// Unit + property tests for the SRV binary encoding: every instruction must
// survive an encode/decode round trip; out-of-range immediates must be
// rejected; the disassembler must produce canonical text.
#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "isa/encoding.h"

namespace reese::isa {
namespace {

Instruction roundtrip(const Instruction& inst) {
  auto word = encode(inst);
  EXPECT_TRUE(word.ok()) << (word.ok() ? "" : word.error().to_string());
  auto decoded = decode(word.value());
  EXPECT_TRUE(decoded.ok());
  return decoded.value();
}

TEST(Encoding, RTypeRoundTrip) {
  const Instruction inst{Opcode::kAdd, 5, 6, 7, 0};
  EXPECT_EQ(roundtrip(inst), inst);
}

TEST(Encoding, ITypeRoundTrip) {
  for (i64 imm : {0LL, 1LL, -1LL, 8191LL, -8192LL, 100LL}) {
    const Instruction inst{Opcode::kAddi, 1, 2, 0, imm};
    EXPECT_EQ(roundtrip(inst), inst) << "imm=" << imm;
  }
}

TEST(Encoding, UTypeRoundTrip) {
  for (i64 imm : {0LL, 262143LL, -262144LL, 12345LL}) {
    const Instruction inst{Opcode::kLui, 9, 0, 0, imm};
    EXPECT_EQ(roundtrip(inst), inst) << "imm=" << imm;
  }
}

TEST(Encoding, LoadStoreRoundTrip) {
  const Instruction load{Opcode::kLd, 3, 4, 0, -8};
  EXPECT_EQ(roundtrip(load), load);
  const Instruction store{Opcode::kSd, 0, 4, 3, 16};
  EXPECT_EQ(roundtrip(store), store);
}

TEST(Encoding, BranchRoundTrip) {
  const Instruction branch{Opcode::kBne, 0, 10, 11, -100};
  EXPECT_EQ(roundtrip(branch), branch);
}

TEST(Encoding, JumpRoundTrip) {
  const Instruction jal{Opcode::kJal, 1, 0, 0, -200000};
  EXPECT_EQ(roundtrip(jal), jal);
  const Instruction jalr{Opcode::kJalr, 0, 1, 0, 4};
  EXPECT_EQ(roundtrip(jalr), jalr);
}

TEST(Encoding, SystemRoundTrip) {
  const Instruction halt{Opcode::kHalt, 0, 0, 0, 0};
  EXPECT_EQ(roundtrip(halt), halt);
  const Instruction out{Opcode::kOut, 0, 17, 0, 0};
  EXPECT_EQ(roundtrip(out), out);
}

TEST(Encoding, RejectsImm14Overflow) {
  EXPECT_FALSE(encode({Opcode::kAddi, 1, 2, 0, 8192}).ok());
  EXPECT_FALSE(encode({Opcode::kAddi, 1, 2, 0, -8193}).ok());
  EXPECT_FALSE(encode({Opcode::kBeq, 0, 1, 2, 10000}).ok());
}

TEST(Encoding, RejectsImm19Overflow) {
  EXPECT_FALSE(encode({Opcode::kLui, 1, 0, 0, 262144}).ok());
  EXPECT_FALSE(encode({Opcode::kJal, 1, 0, 0, -262145}).ok());
}

TEST(Encoding, RejectsUnknownOpcodeByte) {
  EXPECT_FALSE(decode(0xFF000000u).ok());
}

TEST(Encoding, OpcodeByteIsTopByte) {
  auto word = encode({Opcode::kAdd, 1, 2, 3, 0});
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word.value() >> 24, static_cast<u32>(Opcode::kAdd));
}

// Property: random valid instructions of every opcode round-trip.
TEST(Encoding, PropertyRandomRoundTrip) {
  SplitMix64 rng(0xE9C0DE);
  for (int trial = 0; trial < 5000; ++trial) {
    Instruction inst;
    inst.op = static_cast<Opcode>(rng.next_below(kOpcodeCount));
    const OpInfo& info = op_info(inst.op);
    // Populate only the fields the format encodes.
    switch (info.format) {
      case Format::kR:
        inst.rd = static_cast<u8>(rng.next_below(32));
        inst.rs1 = static_cast<u8>(rng.next_below(32));
        if (info.reads_rs2) inst.rs2 = static_cast<u8>(rng.next_below(32));
        break;
      case Format::kI:
      case Format::kL:
      case Format::kJr:
        inst.rd = static_cast<u8>(rng.next_below(32));
        inst.rs1 = static_cast<u8>(rng.next_below(32));
        inst.imm = sign_extend(rng.next(), kImm14Bits);
        break;
      case Format::kS:
        inst.rs1 = static_cast<u8>(rng.next_below(32));
        inst.rs2 = static_cast<u8>(rng.next_below(32));
        inst.imm = sign_extend(rng.next(), kImm14Bits);
        break;
      case Format::kB:
        inst.rs1 = static_cast<u8>(rng.next_below(32));
        inst.rs2 = static_cast<u8>(rng.next_below(32));
        inst.imm = sign_extend(rng.next(), kImm14Bits);
        break;
      case Format::kU:
      case Format::kJ:
        inst.rd = static_cast<u8>(rng.next_below(32));
        inst.imm = sign_extend(rng.next(), kImm19Bits);
        break;
      case Format::kO:
        inst.rs1 = static_cast<u8>(rng.next_below(32));
        break;
      case Format::kN:
        break;
    }
    ASSERT_EQ(roundtrip(inst), inst) << disassemble(inst);
  }
}

// --- opcode table sanity -------------------------------------------------------

TEST(OpcodeTable, MnemonicLookupIsInverse) {
  for (usize i = 0; i < kOpcodeCount; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    EXPECT_EQ(opcode_from_mnemonic(op_info(op).mnemonic), op);
  }
  EXPECT_EQ(opcode_from_mnemonic("bogus"), Opcode::kCount);
}

TEST(OpcodeTable, Predicates) {
  EXPECT_TRUE(is_load(Opcode::kLd));
  EXPECT_TRUE(is_load(Opcode::kFld));
  EXPECT_FALSE(is_load(Opcode::kSd));
  EXPECT_TRUE(is_store(Opcode::kSb));
  EXPECT_TRUE(is_mem(Opcode::kLw));
  EXPECT_TRUE(is_mem(Opcode::kSw));
  EXPECT_FALSE(is_mem(Opcode::kAdd));
  EXPECT_TRUE(is_cond_branch(Opcode::kBeq));
  EXPECT_FALSE(is_cond_branch(Opcode::kJal));
  EXPECT_TRUE(is_jump(Opcode::kJal));
  EXPECT_TRUE(is_jump(Opcode::kJalr));
  EXPECT_TRUE(is_control(Opcode::kBgeu));
  EXPECT_FALSE(is_control(Opcode::kAdd));
  EXPECT_TRUE(is_fp(Opcode::kFadd));
  EXPECT_TRUE(is_fp(Opcode::kFcvtLD));
  EXPECT_FALSE(is_fp(Opcode::kMul));
}

TEST(OpcodeTable, MemBytes) {
  EXPECT_EQ(op_info(Opcode::kLb).mem_bytes, 1);
  EXPECT_EQ(op_info(Opcode::kLh).mem_bytes, 2);
  EXPECT_EQ(op_info(Opcode::kLw).mem_bytes, 4);
  EXPECT_EQ(op_info(Opcode::kLd).mem_bytes, 8);
  EXPECT_EQ(op_info(Opcode::kSb).mem_bytes, 1);
  EXPECT_EQ(op_info(Opcode::kFsd).mem_bytes, 8);
  EXPECT_EQ(op_info(Opcode::kAdd).mem_bytes, 0);
}

TEST(OpcodeTable, LoadSignedness) {
  EXPECT_TRUE(op_info(Opcode::kLb).load_signed);
  EXPECT_FALSE(op_info(Opcode::kLbu).load_signed);
  EXPECT_TRUE(op_info(Opcode::kLw).load_signed);
  EXPECT_FALSE(op_info(Opcode::kLwu).load_signed);
}

TEST(OpcodeTable, ExecClasses) {
  EXPECT_EQ(op_info(Opcode::kMul).exec_class, ExecClass::kIntMul);
  EXPECT_EQ(op_info(Opcode::kDiv).exec_class, ExecClass::kIntDiv);
  EXPECT_EQ(op_info(Opcode::kRemu).exec_class, ExecClass::kIntDiv);
  EXPECT_EQ(op_info(Opcode::kFadd).exec_class, ExecClass::kFpAdd);
  EXPECT_EQ(op_info(Opcode::kFmul).exec_class, ExecClass::kFpMul);
  EXPECT_EQ(op_info(Opcode::kFsqrt).exec_class, ExecClass::kFpSqrt);
  EXPECT_EQ(op_info(Opcode::kBeq).exec_class, ExecClass::kIntAlu);
}

// --- disassembler ----------------------------------------------------------------

TEST(Disassemble, Formats) {
  EXPECT_EQ(disassemble({Opcode::kAdd, 5, 6, 7, 0}), "add t0, t1, t2");
  EXPECT_EQ(disassemble({Opcode::kAddi, 10, 2, 0, -4}), "addi a0, sp, -4");
  EXPECT_EQ(disassemble({Opcode::kLd, 10, 2, 0, 8}), "ld a0, 8(sp)");
  EXPECT_EQ(disassemble({Opcode::kSd, 0, 2, 10, 8}), "sd a0, 8(sp)");
  EXPECT_EQ(disassemble({Opcode::kBeq, 0, 5, 0, -3}), "beq t0, zero, -3");
  EXPECT_EQ(disassemble({Opcode::kJal, 1, 0, 0, 12}), "jal ra, 12");
  EXPECT_EQ(disassemble({Opcode::kHalt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(disassemble({Opcode::kOut, 0, 10, 0, 0}), "out a0");
  EXPECT_EQ(disassemble({Opcode::kFadd, 1, 2, 3, 0}), "fadd ft1, ft2, ft3");
}

TEST(Registers, ParseByNumberAndAlias) {
  EXPECT_EQ(parse_register("x0", false), 0);
  EXPECT_EQ(parse_register("zero", false), 0);
  EXPECT_EQ(parse_register("sp", false), 2);
  EXPECT_EQ(parse_register("x31", false), 31);
  EXPECT_EQ(parse_register("t6", false), 31);
  EXPECT_EQ(parse_register("fp", false), 8);
  EXPECT_EQ(parse_register("s0", false), 8);
  EXPECT_EQ(parse_register("x32", false), -1);
  EXPECT_EQ(parse_register("bogus", false), -1);
  EXPECT_EQ(parse_register("f0", true), 0);
  EXPECT_EQ(parse_register("ft0", true), 0);
  EXPECT_EQ(parse_register("fa0", true), 10);
  EXPECT_EQ(parse_register("f31", true), 31);
  EXPECT_EQ(parse_register("t0", true), -1);
}

}  // namespace
}  // namespace reese::isa

// Functional-semantics tests for the SRV executor: arithmetic edge cases,
// memory access widths and sign extension, control flow, FP behaviour, and
// the compute()/step() consistency property REESE's comparator relies on.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/bitutil.h"
#include "common/rng.h"
#include "isa/executor.h"

namespace reese::isa {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  u64 run_alu(Opcode op, u64 a, u64 b, i64 imm = 0) {
    const Instruction inst{op, 1, 2, 3, imm};
    return compute(inst, a, b, /*pc=*/0x1000).value;
  }

  mem::MainMemory memory_;
  DirectDataSpace space_{&memory_};
  ArchState state_;
};

TEST_F(ExecutorTest, AddSubWrap) {
  EXPECT_EQ(run_alu(Opcode::kAdd, 2, 3), 5u);
  EXPECT_EQ(run_alu(Opcode::kAdd, ~u64{0}, 1), 0u);  // wraparound
  EXPECT_EQ(run_alu(Opcode::kSub, 2, 3), ~u64{0});
}

TEST_F(ExecutorTest, Logic) {
  EXPECT_EQ(run_alu(Opcode::kAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(run_alu(Opcode::kOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(run_alu(Opcode::kXor, 0b1100, 0b1010), 0b0110u);
}

TEST_F(ExecutorTest, ShiftsMaskTo6Bits) {
  EXPECT_EQ(run_alu(Opcode::kSll, 1, 63), u64{1} << 63);
  EXPECT_EQ(run_alu(Opcode::kSll, 1, 64), 1u);  // shift amount & 63
  EXPECT_EQ(run_alu(Opcode::kSrl, u64{1} << 63, 63), 1u);
  EXPECT_EQ(run_alu(Opcode::kSra, static_cast<u64>(-8), 1),
            static_cast<u64>(-4));
  EXPECT_EQ(run_alu(Opcode::kSrai, static_cast<u64>(-1), 0, 63),
            static_cast<u64>(-1));
}

TEST_F(ExecutorTest, Comparisons) {
  EXPECT_EQ(run_alu(Opcode::kSlt, static_cast<u64>(-1), 0), 1u);
  EXPECT_EQ(run_alu(Opcode::kSltu, static_cast<u64>(-1), 0), 0u);
  EXPECT_EQ(run_alu(Opcode::kSlti, static_cast<u64>(-5), 0, -4), 1u);
  EXPECT_EQ(run_alu(Opcode::kSltiu, 3, 0, 4), 1u);
}

TEST_F(ExecutorTest, MultiplyAndHigh) {
  EXPECT_EQ(run_alu(Opcode::kMul, 7, 6), 42u);
  // mulh of two large positives.
  const u64 a = u64{1} << 40;
  EXPECT_EQ(run_alu(Opcode::kMulh, a, a), u64{1} << 16);
  // mulh sign behaviour: (-1) * (1) high part is -1.
  EXPECT_EQ(run_alu(Opcode::kMulh, static_cast<u64>(-1), 1),
            static_cast<u64>(-1));
}

TEST_F(ExecutorTest, DivisionTotalSemantics) {
  EXPECT_EQ(run_alu(Opcode::kDiv, 42, 5), 8u);
  EXPECT_EQ(run_alu(Opcode::kDiv, static_cast<u64>(-42), 5),
            static_cast<u64>(-8));
  EXPECT_EQ(run_alu(Opcode::kRem, static_cast<u64>(-42), 5),
            static_cast<u64>(-2));
  // Division by zero: RISC-V totalized values, no trap.
  EXPECT_EQ(run_alu(Opcode::kDiv, 42, 0), ~u64{0});
  EXPECT_EQ(run_alu(Opcode::kDivu, 42, 0), ~u64{0});
  EXPECT_EQ(run_alu(Opcode::kRem, 42, 0), 42u);
  // Overflow case INT64_MIN / -1.
  EXPECT_EQ(run_alu(Opcode::kDiv, static_cast<u64>(INT64_MIN),
                    static_cast<u64>(-1)),
            static_cast<u64>(INT64_MIN));
  EXPECT_EQ(run_alu(Opcode::kRem, static_cast<u64>(INT64_MIN),
                    static_cast<u64>(-1)),
            0u);
  EXPECT_EQ(run_alu(Opcode::kDivu, 100, 7), 14u);
  EXPECT_EQ(run_alu(Opcode::kRemu, 100, 7), 2u);
}

TEST_F(ExecutorTest, Lui) {
  EXPECT_EQ(run_alu(Opcode::kLui, 0, 0, 1), u64{1} << 14);
  EXPECT_EQ(run_alu(Opcode::kLui, 0, 0, -1), static_cast<u64>(-16384));
}

TEST_F(ExecutorTest, BranchOutcomes) {
  auto taken = [&](Opcode op, u64 a, u64 b) {
    const Instruction inst{op, 0, 1, 2, 4};
    return compute(inst, a, b, 0x1000).taken;
  };
  EXPECT_TRUE(taken(Opcode::kBeq, 5, 5));
  EXPECT_FALSE(taken(Opcode::kBeq, 5, 6));
  EXPECT_TRUE(taken(Opcode::kBne, 5, 6));
  EXPECT_TRUE(taken(Opcode::kBlt, static_cast<u64>(-1), 0));
  EXPECT_FALSE(taken(Opcode::kBltu, static_cast<u64>(-1), 0));
  EXPECT_TRUE(taken(Opcode::kBge, 0, 0));
  EXPECT_TRUE(taken(Opcode::kBgeu, static_cast<u64>(-1), 1));
}

TEST_F(ExecutorTest, BranchTargetIsInstructionRelative) {
  const Instruction inst{Opcode::kBeq, 0, 1, 2, -2};
  const ComputeOut out = compute(inst, 7, 7, 0x1008);
  EXPECT_TRUE(out.taken);
  EXPECT_EQ(out.target, 0x1000u);
}

TEST_F(ExecutorTest, JalLinksAndJumps) {
  const Instruction inst{Opcode::kJal, 1, 0, 0, 3};
  const ComputeOut out = compute(inst, 0, 0, 0x1000);
  EXPECT_TRUE(out.taken);
  EXPECT_EQ(out.target, 0x100Cu);
  EXPECT_EQ(out.value, 0x1004u);  // link
}

TEST_F(ExecutorTest, JalrMasksLowBit) {
  const Instruction inst{Opcode::kJalr, 0, 5, 0, 1};
  const ComputeOut out = compute(inst, 0x2000, 0, 0x1000);
  EXPECT_EQ(out.target, 0x2000u);  // (0x2000+1) & ~1
}

TEST_F(ExecutorTest, StepUpdatesRegistersAndPc) {
  state_.pc = 0x1000;
  state_.set_x(6, 40);
  state_.set_x(7, 2);
  const Instruction inst{Opcode::kAdd, 5, 6, 7, 0};
  const StepOut out = step(&state_, inst, &space_);
  EXPECT_EQ(state_.x(5), 42u);
  EXPECT_EQ(state_.pc, 0x1004u);
  EXPECT_EQ(out.result, 42u);
  EXPECT_TRUE(out.wrote_reg);
}

TEST_F(ExecutorTest, ZeroRegisterIgnoresWrites) {
  state_.pc = 0x1000;
  const Instruction inst{Opcode::kAddi, 0, 0, 0, 99};
  step(&state_, inst, &space_);
  EXPECT_EQ(state_.x(0), 0u);
}

TEST_F(ExecutorTest, LoadStoreWidths) {
  state_.pc = 0x1000;
  state_.set_x(5, 0x100000);  // base
  state_.set_x(6, 0xDEADBEEFCAFEF00DULL);
  step(&state_, {Opcode::kSd, 0, 5, 6, 0}, &space_);
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLbu, 7, 5, 0, 0}, &space_);
  EXPECT_EQ(state_.x(7), 0x0Du);
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLb, 7, 5, 0, 1}, &space_);
  EXPECT_EQ(state_.x(7), static_cast<u64>(-16));  // 0xF0 sign-extended
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLhu, 7, 5, 0, 0}, &space_);
  EXPECT_EQ(state_.x(7), 0xF00Du);
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLw, 7, 5, 0, 4}, &space_);
  EXPECT_EQ(state_.x(7), 0xFFFFFFFFDEADBEEFULL);  // sign-extended word
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLwu, 7, 5, 0, 4}, &space_);
  EXPECT_EQ(state_.x(7), 0xDEADBEEFu);
  state_.pc = 0x1000;
  step(&state_, {Opcode::kLd, 7, 5, 0, 0}, &space_);
  EXPECT_EQ(state_.x(7), 0xDEADBEEFCAFEF00DULL);
}

TEST_F(ExecutorTest, StoreNarrowWidths) {
  state_.set_x(5, 0x100000);
  state_.set_x(6, 0xAABBCCDDEEFF1122ULL);
  state_.pc = 0x1000;
  step(&state_, {Opcode::kSb, 0, 5, 6, 0}, &space_);
  EXPECT_EQ(memory_.load(0x100000, 8), 0x22u);  // only one byte written
  state_.pc = 0x1000;
  step(&state_, {Opcode::kSh, 0, 5, 6, 2}, &space_);
  EXPECT_EQ(memory_.load(0x100002, 2), 0x1122u);
}

TEST_F(ExecutorTest, OutAccumulatesHash) {
  state_.pc = 0x1000;
  state_.set_x(5, 123);
  const u64 hash_before = state_.out_hash;
  step(&state_, {Opcode::kOut, 0, 5, 0, 0}, &space_);
  EXPECT_NE(state_.out_hash, hash_before);
  EXPECT_EQ(state_.out_count, 1u);
}

TEST_F(ExecutorTest, HaltSetsFlag) {
  state_.pc = 0x1000;
  step(&state_, {Opcode::kHalt, 0, 0, 0, 0}, &space_);
  EXPECT_TRUE(state_.halted);
}

// --- FP ------------------------------------------------------------------------

TEST_F(ExecutorTest, FpArithmetic) {
  const u64 two = std::bit_cast<u64>(2.0);
  const u64 three = std::bit_cast<u64>(3.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFadd, two, three)), 5.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFsub, two, three)), -1.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFmul, two, three)), 6.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFdiv, three, two)), 1.5);
  EXPECT_EQ(std::bit_cast<double>(
                run_alu(Opcode::kFsqrt, std::bit_cast<u64>(9.0), 0)),
            3.0);
}

TEST_F(ExecutorTest, FpMinMaxNeg) {
  const u64 two = std::bit_cast<u64>(2.0);
  const u64 neg3 = std::bit_cast<u64>(-3.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFmin, two, neg3)), -3.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFmax, two, neg3)), 2.0);
  EXPECT_EQ(std::bit_cast<double>(run_alu(Opcode::kFneg, two, 0)), -2.0);
}

TEST_F(ExecutorTest, FpCompare) {
  const u64 one = std::bit_cast<u64>(1.0);
  const u64 two = std::bit_cast<u64>(2.0);
  EXPECT_EQ(run_alu(Opcode::kFlt, one, two), 1u);
  EXPECT_EQ(run_alu(Opcode::kFle, two, two), 1u);
  EXPECT_EQ(run_alu(Opcode::kFeq, one, two), 0u);
  // NaN compares false.
  const u64 nan = std::bit_cast<u64>(std::nan(""));
  EXPECT_EQ(run_alu(Opcode::kFeq, nan, nan), 0u);
  EXPECT_EQ(run_alu(Opcode::kFlt, nan, one), 0u);
}

TEST_F(ExecutorTest, FpConversions) {
  EXPECT_EQ(std::bit_cast<double>(
                run_alu(Opcode::kFcvtDL, static_cast<u64>(-7), 0)),
            -7.0);
  EXPECT_EQ(run_alu(Opcode::kFcvtLD, std::bit_cast<u64>(-7.9), 0),
            static_cast<u64>(-7));  // truncation toward zero
  // Saturation + NaN.
  EXPECT_EQ(run_alu(Opcode::kFcvtLD, std::bit_cast<u64>(1e30), 0),
            static_cast<u64>(INT64_MAX));
  EXPECT_EQ(run_alu(Opcode::kFcvtLD, std::bit_cast<u64>(-1e30), 0),
            static_cast<u64>(INT64_MIN));
  EXPECT_EQ(run_alu(Opcode::kFcvtLD, std::bit_cast<u64>(std::nan("")), 0),
            0u);
}

TEST_F(ExecutorTest, FpMoves) {
  const u64 bits = 0x7FF8000000000001ULL;
  EXPECT_EQ(run_alu(Opcode::kFmvXD, bits, 0), bits);
  EXPECT_EQ(run_alu(Opcode::kFmvDX, bits, 0), bits);
}

// Property: compute() is a pure function — same inputs, same outputs —
// across every opcode. This is the exact property REESE's comparator
// depends on (P and R recomputations must agree in the fault-free case).
TEST(ExecutorProperty, ComputeIsDeterministic) {
  SplitMix64 rng(0xC0FFEE);
  for (int trial = 0; trial < 20000; ++trial) {
    Instruction inst;
    inst.op = static_cast<Opcode>(rng.next_below(kOpcodeCount));
    inst.rd = static_cast<u8>(rng.next_below(32));
    inst.rs1 = static_cast<u8>(rng.next_below(32));
    inst.rs2 = static_cast<u8>(rng.next_below(32));
    inst.imm = sign_extend(rng.next(), 14);
    const u64 a = rng.next();
    const u64 b = rng.next();
    const Addr pc = 0x1000 + 4 * rng.next_below(1024);

    const ComputeOut first = compute(inst, a, b, pc);
    const ComputeOut second = compute(inst, a, b, pc);
    ASSERT_EQ(first.value, second.value);
    ASSERT_EQ(first.taken, second.taken);
    ASSERT_EQ(first.target, second.target);
    ASSERT_EQ(first.addr, second.addr);
  }
}

}  // namespace
}  // namespace reese::isa

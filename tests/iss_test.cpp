// Golden ISS + Program tests.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/iss.h"

namespace reese::isa {
namespace {

Program assemble_ok(const char* source) {
  auto result = assemble(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return std::move(result).value();
}

TEST(Program, ContainsPc) {
  const Program p = assemble_ok("main: nop\nnop\nhalt\n");
  EXPECT_TRUE(p.contains_pc(kDefaultCodeBase));
  EXPECT_TRUE(p.contains_pc(kDefaultCodeBase + 8));
  EXPECT_FALSE(p.contains_pc(kDefaultCodeBase + 12));
  EXPECT_FALSE(p.contains_pc(kDefaultCodeBase + 2));  // misaligned
  EXPECT_FALSE(p.contains_pc(0));
  EXPECT_EQ(p.end_pc(), kDefaultCodeBase + 12);
}

TEST(Program, LoadDataPlacesImage) {
  const Program p = assemble_ok(".data\nx: .dword 0xABCD\n");
  mem::MainMemory memory;
  p.load_data(&memory);
  EXPECT_EQ(memory.load(kDefaultDataBase, 8), 0xABCDu);
}

TEST(Iss, InitialState) {
  const Program p = assemble_ok("main: halt\n");
  Iss iss(p);
  EXPECT_EQ(iss.state().pc, p.entry);
  EXPECT_EQ(iss.state().x(kSpReg), kDefaultStackTop);
  EXPECT_EQ(iss.state().x(kGpReg), p.data_base);
  EXPECT_EQ(iss.state().x(0), 0u);
}

TEST(Iss, RunCountsInstructions) {
  const Program p = assemble_ok(R"(
main:
  li  t0, 5
loop:
  addi t0, t0, -1
  bnez t0, loop
  halt
)");
  Iss iss(p);
  const IssResult result = iss.run(1000);
  EXPECT_TRUE(result.halted);
  // li(1) + 5*(addi+bnez) + halt = 12.
  EXPECT_EQ(result.executed_instructions, 12u);
}

TEST(Iss, BudgetStopsEarly) {
  const Program p = assemble_ok("main: j main\n");
  Iss iss(p);
  const IssResult result = iss.run(100);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.executed_instructions, 100u);
}

TEST(Iss, BadPcDetected) {
  // Fall off the end of the text segment.
  const Program p = assemble_ok("main: nop\n");
  Iss iss(p);
  const IssResult result = iss.run(100);
  EXPECT_TRUE(result.bad_pc);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.final_pc, p.end_pc());
}

TEST(Iss, MixRecording) {
  const Program p = assemble_ok(R"(
main:
  li   t0, 4          # alu
  la   s0, buf        # 2x alu
loop:
  sd   t0, 0(s0)      # store
  ld   t1, 0(s0)      # load
  mul  t2, t1, t1     # mul
  addi t0, t0, -1     # alu
  bnez t0, loop       # branch (taken 3, not-taken 1)
  halt
  .data
  .align 8
buf: .space 8
)");
  Iss iss(p);
  iss.run(10'000);
  const InstMix& mix = iss.mix();
  EXPECT_EQ(mix.loads, 4u);
  EXPECT_EQ(mix.stores, 4u);
  EXPECT_EQ(mix.int_mul, 4u);
  EXPECT_EQ(mix.cond_branches, 4u);
  EXPECT_EQ(mix.taken_branches, 3u);
  EXPECT_EQ(mix.total, iss.run(0).executed_instructions);
}

TEST(Iss, OutHashOrderSensitive) {
  const Program p1 = assemble_ok("main: li t0,1\nout t0\nli t0,2\nout t0\nhalt\n");
  const Program p2 = assemble_ok("main: li t0,2\nout t0\nli t0,1\nout t0\nhalt\n");
  Iss a(p1);
  Iss b(p2);
  const u64 hash_a = a.run(100).out_hash;
  const u64 hash_b = b.run(100).out_hash;
  EXPECT_NE(hash_a, hash_b);
}

TEST(Iss, RecursionWithStack) {
  const Program p = assemble_ok(R"(
main:
  li   sp, 0x8000000
  li   a0, 10
  call fact
  out  a0
  halt
fact:
  li   t0, 2
  blt  a0, t0, base
  addi sp, sp, -16
  sd   ra, 0(sp)
  sd   a0, 8(sp)
  addi a0, a0, -1
  call fact
  ld   t1, 8(sp)
  mul  a0, a0, t1
  ld   ra, 0(sp)
  addi sp, sp, 16
base:
  ret
)");
  Iss iss(p);
  const IssResult result = iss.run(10'000);
  ASSERT_TRUE(result.halted);
  // 10! = 3628800 — check via a second program OUTing the literal.
  const Program check = assemble_ok("main: li t0, 3628800\nout t0\nhalt\n");
  Iss iss_check(check);
  EXPECT_EQ(result.out_hash, iss_check.run(100).out_hash);
}

}  // namespace
}  // namespace reese::isa

// Injector bookkeeping regressions and the campaign runner.
//
// The 10⁵-injection campaigns depend on three injector invariants that
// used to be broken: records are identified by (seq, injected_at) rather
// than seq alone (refetch aliasing), resolution is idempotent (no double
// counting), and resolution is O(1) (no quadratic campaign cost). The
// campaign runner itself must produce a bit-identical matrix regardless
// of worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "core/pipeline.h"
#include "faults/injector.h"
#include "isa/assembler.h"
#include "json_checker.h"
#include "sim/campaign.h"
#include "workloads/workload.h"

namespace reese {
namespace {

// --- record identity across refetch aliasing ---------------------------------

TEST(Injector, AliasedSeqsResolveIndependently) {
  // A mismatch flush can refetch an instruction under a reused sequence
  // number: the injector then holds two live records for one seq. Each
  // must resolve independently, with detections matched by injected_at.
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  isa::Instruction nop;
  injector.on_instruction(5, 10, 0x1000, nop);  // first fetch of seq 5
  injector.on_instruction(5, 50, 0x1000, nop);  // refetch after the flush
  ASSERT_EQ(injector.injected(), 2u);

  // The *second* record is detected; the first escapes. Before keying by
  // (seq, injected_at) both reports landed on the latest record.
  injector.on_detected(5, 50, 60);
  injector.on_undetected(5);

  EXPECT_EQ(injector.detected(), 1u);
  EXPECT_EQ(injector.undetected(), 1u);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.duplicate_reports(), 0u);

  const std::vector<faults::FaultRecord>& records = injector.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].injected_at, 10u);
  EXPECT_TRUE(records[0].resolved);
  EXPECT_FALSE(records[0].detected);
  EXPECT_EQ(records[1].injected_at, 50u);
  EXPECT_TRUE(records[1].resolved);
  EXPECT_TRUE(records[1].detected);
  EXPECT_EQ(records[1].detected_at, 60u);

  // Latency is attributed to the record that was actually detected.
  EXPECT_EQ(injector.latency().count(), 1u);
  EXPECT_DOUBLE_EQ(injector.latency().mean(), 10.0);
}

TEST(Injector, EscapesResolveOldestAliasFirst) {
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  isa::Instruction nop;
  injector.on_instruction(9, 100, 0x1000, nop);
  injector.on_instruction(9, 200, 0x1000, nop);
  injector.on_undetected(9);  // FIFO: settles the cycle-100 record
  EXPECT_TRUE(injector.records()[0].resolved);
  EXPECT_FALSE(injector.records()[1].resolved);
  EXPECT_EQ(injector.pending(), 1u);
}

// --- idempotent resolution ----------------------------------------------------

TEST(Injector, DoubleResolutionIsIdempotent) {
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  isa::Instruction nop;
  injector.on_instruction(7, 3, 0x1000, nop);

  injector.on_detected(7, 3, 9);
  injector.on_detected(7, 3, 9);   // duplicate detection report
  injector.on_undetected(7);       // conflicting duplicate report

  EXPECT_EQ(injector.detected(), 1u);
  EXPECT_EQ(injector.undetected(), 0u);
  EXPECT_EQ(injector.duplicate_reports(), 2u);
  EXPECT_EQ(injector.latency().count(), 1u);
  EXPECT_NEAR(injector.coverage(), 1.0, 1e-12);
}

// --- latency histogram bounds -------------------------------------------------

TEST(Injector, LatencyPastHistogramRangeClampsToOverflow) {
  // The injector's Histogram{4, 64} covers latencies up to 256 cycles; a
  // long flush-drain latency must clamp into the overflow bucket, not
  // vanish from count/mean/max.
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  isa::Instruction nop;
  injector.on_instruction(1, 0, 0x1000, nop);
  injector.on_instruction(2, 0, 0x1000, nop);
  injector.on_detected(1, 0, 12);     // in range
  injector.on_detected(2, 0, 1000);   // past the last bucket

  const Histogram& latency = injector.latency();
  EXPECT_EQ(latency.count(), 2u);
  EXPECT_EQ(latency.overflow(), 1u);
  EXPECT_EQ(latency.max(), 1000u);
  EXPECT_EQ(latency.min(), 12u);
  EXPECT_DOUBLE_EQ(latency.mean(), 506.0);
  EXPECT_EQ(latency.percentile(0.99), 1000u);
}

// --- resolution cost ----------------------------------------------------------

TEST(Injector, FifoResolutionOfLargeBacklogIsFast) {
  // 20k pending faults resolved oldest-first: the old reverse linear scan
  // made this quadratic (~2·10⁸ record visits); the pending index makes it
  // linear. The assertions only check the accounting — the speed shows up
  // as this test not timing out.
  constexpr InstSeq kCount = 20'000;
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  isa::Instruction nop;
  for (InstSeq seq = 1; seq <= kCount; ++seq) {
    injector.on_instruction(seq, seq, 0x1000, nop);
  }
  for (InstSeq seq = 1; seq <= kCount; ++seq) {
    if (seq % 2 == 0) {
      injector.on_detected(seq, seq, seq + 8);
    } else {
      injector.on_undetected(seq);
    }
  }
  EXPECT_EQ(injector.detected(), kCount / 2);
  EXPECT_EQ(injector.undetected(), kCount / 2);
  EXPECT_EQ(injector.pending(), 0u);
  EXPECT_EQ(injector.duplicate_reports(), 0u);
}

// --- end-to-end bookkeeping through the pipeline ------------------------------

TEST(FaultPipeline, HeavyCampaignBookkeepingStaysConsistent) {
  // Dense faults through the REESE pipeline: every detection triggers the
  // mismatch-flush recovery path, and the accounting must still close —
  // every record resolved at most once, no duplicates, coverage complete.
  workloads::WorkloadOptions options;
  auto made = workloads::make_workload("go", options);
  ASSERT_TRUE(made.ok());
  const workloads::Workload workload = std::move(made).value();

  faults::InjectorConfig config;
  config.rate = 5e-3;
  faults::Injector injector(config);
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.set_fault_hook(&injector);
  pipeline.run(50'000, 5'000'000);

  ASSERT_GT(injector.injected(), 100u);
  EXPECT_EQ(injector.duplicate_reports(), 0u);
  EXPECT_EQ(injector.undetected(), 0u);
  EXPECT_EQ(injector.detected() + injector.pending(), injector.injected());

  u64 resolved = 0;
  for (const faults::FaultRecord& record : injector.records()) {
    if (!record.resolved) continue;
    ++resolved;
    EXPECT_TRUE(record.detected);
    EXPECT_GE(record.detected_at, record.injected_at);
  }
  EXPECT_EQ(resolved, injector.detected());
}

// --- campaign runner ----------------------------------------------------------

sim::CampaignSpec tiny_campaign() {
  sim::CampaignSpec spec;
  spec.workloads = {"li", "go"};
  spec.replicas = 2;
  spec.instructions = 5'000;
  spec.rate = 5e-3;
  return spec;
}

TEST(Campaign, MatrixIsBitIdenticalAcrossJobCounts) {
  sim::CampaignSpec spec = tiny_campaign();
  spec.jobs = 1;
  const sim::CampaignResult sequential = sim::run_campaign(spec);
  spec.jobs = 2;
  const sim::CampaignResult two_jobs = sim::run_campaign(spec);
  spec.jobs = 0;  // auto: hardware concurrency (or $REESE_JOBS)
  const sim::CampaignResult hardware = sim::run_campaign(spec);

  EXPECT_GT(sequential.total_injections(), 0u);
  EXPECT_TRUE(sequential.matrix == two_jobs.matrix);
  EXPECT_TRUE(sequential.matrix == hardware.matrix);
}

TEST(Campaign, DerivedSeedsAreDistinctPerCell) {
  std::set<u64> seeds;
  for (usize v = 0; v < 5; ++v) {
    for (usize w = 0; w < 6; ++w) {
      for (usize r = 0; r < 12; ++r) {
        seeds.insert(sim::derive_cell_seed(0xFA17C0DE, v, w, r));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 5u * 6u * 12u);
  // Stable across PRs: BENCH_fault.json comparability depends on it.
  EXPECT_EQ(sim::derive_cell_seed(0xFA17C0DE, 0, 0, 0),
            sim::derive_cell_seed(0xFA17C0DE, 0, 0, 0));
  EXPECT_NE(sim::derive_cell_seed(1, 0, 0, 0),
            sim::derive_cell_seed(2, 0, 0, 0));
}

TEST(Campaign, StandardVariantsMeetCoverageExpectations) {
  sim::CampaignSpec spec = tiny_campaign();
  const sim::CampaignResult result = sim::run_campaign(spec);
  ASSERT_EQ(result.spec.variants.size(), 5u);
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignVariant& variant = result.spec.variants[v];
    const sim::CampaignCell total = result.variant_total(v);
    EXPECT_GT(total.injected, 0u) << variant.label;
    EXPECT_EQ(total.duplicate_reports, 0u) << variant.label;
    if (variant.expect_full_coverage) {
      EXPECT_EQ(total.undetected, 0u) << variant.label;
    }
    if (variant.expect_zero_coverage) {
      EXPECT_EQ(total.detected, 0u) << variant.label;
    }
  }
}

TEST(Campaign, StrataSumToTotals) {
  const sim::CampaignResult result = sim::run_campaign(tiny_campaign());
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignCell total = result.variant_total(v);
    u64 class_injected = 0, class_detected = 0, class_undetected = 0;
    for (const sim::StratumCount& stratum : total.by_class) {
      class_injected += stratum.injected;
      class_detected += stratum.detected;
      class_undetected += stratum.undetected;
    }
    EXPECT_EQ(class_injected, total.injected);
    EXPECT_EQ(class_detected, total.detected);
    EXPECT_EQ(class_undetected, total.undetected);
    EXPECT_EQ(total.p_side.injected + total.r_side.injected, total.injected);
    EXPECT_EQ(total.p_side.detected + total.r_side.detected, total.detected);
  }
}

TEST(Campaign, ReportSerializesToValidJson) {
  const sim::CampaignResult result = sim::run_campaign(tiny_campaign());
  const std::string json = result.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"reese-fault-campaign-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"total_injections\""), std::string::npos);
  EXPECT_NE(json.find("\"wilson_lower\""), std::string::npos);
  EXPECT_NE(json.find("\"by_class\""), std::string::npos);

  const std::string path = testing::TempDir() + "/reese_fault_campaign.json";
  ASSERT_TRUE(sim::write_campaign_report(result, path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  usize n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(contents, json);
}

// --- dynamic ACE-window measurement -------------------------------------------

TEST(Injector, AceWindowClosesOnRedefinitionAfterReads) {
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  const isa::Instruction def{isa::Opcode::kAdd, 5, 1, 2, 0};     // x5 = ...
  const isa::Instruction filler{isa::Opcode::kAdd, 7, 1, 2, 0};  // no x5
  const isa::Instruction use{isa::Opcode::kAdd, 6, 5, 1, 0};     // reads x5
  const isa::Instruction redefine{isa::Opcode::kAddi, 5, 0, 0, 0};

  injector.on_instruction(1, 0, 0x1000, def);       // stream pos 1
  injector.on_instruction(2, 1, 0x1004, filler);    // pos 2
  injector.on_instruction(3, 2, 0x1008, use);       // pos 3: reads x5
  injector.on_instruction(4, 3, 0x100c, redefine);  // pos 4: kills x5

  const std::vector<faults::FaultRecord>& records = injector.records();
  ASSERT_EQ(records.size(), 4u);
  // The faulted x5 value was read at pos 3, redefined at pos 4: ACE with a
  // live window of 3 − 1 = 2 instructions.
  EXPECT_TRUE(records[0].window_closed);
  EXPECT_TRUE(records[0].ace);
  EXPECT_EQ(records[0].live_window, 2u);
  EXPECT_EQ(records[0].pc, Addr{0x1000});

  // The filler's x7 and the use's x6 are never read; still open here.
  EXPECT_FALSE(records[1].window_closed);
  EXPECT_FALSE(records[2].window_closed);

  injector.finalize_windows();
  EXPECT_TRUE(records[1].window_closed);
  EXPECT_FALSE(records[1].ace);  // produced, never consumed: masked
  EXPECT_TRUE(records[2].window_closed);
  EXPECT_FALSE(records[2].ace);
  // finalize_windows is idempotent.
  injector.finalize_windows();
  EXPECT_EQ(records[0].live_window, 2u);
}

TEST(Injector, ImmediateConsumersAndSinksClassifyOnInjection) {
  faults::InjectorConfig config;
  config.rate = 1.0;
  faults::Injector injector(config);
  const isa::Instruction store{isa::Opcode::kSd, 0, 1, 2, 0};
  const isa::Instruction branch{isa::Opcode::kBeq, 0, 1, 2, 4};
  const isa::Instruction x0_write{isa::Opcode::kAddi, 0, 1, 0, 7};

  injector.on_instruction(1, 0, 0x1000, store);
  injector.on_instruction(2, 1, 0x1004, branch);
  injector.on_instruction(3, 2, 0x1008, x0_write);

  const std::vector<faults::FaultRecord>& records = injector.records();
  ASSERT_EQ(records.size(), 3u);
  // Stored data and branch outcomes are consumed by the instruction
  // itself: ACE, window 1, no tracking needed.
  EXPECT_TRUE(records[0].window_closed);
  EXPECT_TRUE(records[0].ace);
  EXPECT_EQ(records[0].live_window, 1u);
  EXPECT_TRUE(records[1].window_closed);
  EXPECT_TRUE(records[1].ace);
  // An x0 write is architecturally dropped: masked immediately.
  EXPECT_TRUE(records[2].window_closed);
  EXPECT_FALSE(records[2].ace);
  EXPECT_EQ(records[2].live_window, 0u);
}

// --- per-PC stratum ------------------------------------------------------------

sim::CampaignSpec program_campaign() {
  auto assembled = isa::assemble(R"(
  .text
main:
  li   t0, 40
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  EXPECT_TRUE(assembled.ok());
  sim::CampaignSpec spec;
  spec.programs.push_back({"tiny_loop", std::move(assembled).value()});
  spec.replicas = 4;
  spec.instructions = 5'000;
  spec.rate = 0.05;
  return spec;
}

TEST(Campaign, PcStrataSumToTotalsAndEveryOutcomeIsClassified) {
  const sim::CampaignResult result = sim::run_campaign(program_campaign());
  // The program axis replaces the workload axis and may stop on HALT.
  ASSERT_EQ(result.spec.workloads,
            (std::vector<std::string>{"tiny_loop"}));
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignCell total = result.variant_total(v);
    ASSERT_GT(total.injected, 0u) << result.spec.variants[v].label;
    u64 injected = 0, detected = 0, undetected = 0, outcomes = 0;
    for (const auto& [pc, stratum] : total.by_pc) {
      injected += stratum.injected;
      detected += stratum.detected;
      undetected += stratum.undetected;
      outcomes += stratum.ace + stratum.masked + stratum.window_pending;
      // Every PC is a real static instruction of the 6-instruction image.
      EXPECT_GE(pc, Addr{0x1000});
      EXPECT_LT(pc, Addr{0x1000 + 6 * 4});
    }
    EXPECT_EQ(injected, total.injected);
    EXPECT_EQ(detected, total.detected);
    EXPECT_EQ(undetected, total.undetected);
    // finalize_windows ran: every record has an ACE-or-masked verdict.
    EXPECT_EQ(outcomes, total.injected);
  }
  // The baseline variant measures real windows: the loop-carried addi is
  // read before redefinition, so ACE mass must show up somewhere.
  u64 window_sum = 0;
  for (const auto& [pc, stratum] : result.variant_total(3).by_pc) {
    window_sum += stratum.window_sum;
  }
  EXPECT_GT(window_sum, 0u);
}

TEST(Campaign, PcStrataAreBitIdenticalAcrossJobCounts) {
  sim::CampaignSpec spec = program_campaign();
  spec.jobs = 1;
  const sim::CampaignResult sequential = sim::run_campaign(spec);
  spec.jobs = 4;
  const sim::CampaignResult parallel = sim::run_campaign(spec);
  EXPECT_GT(sequential.total_injections(), 0u);
  // CampaignCell::operator== covers by_pc, so this compares the new
  // stratum byte for byte as well.
  EXPECT_TRUE(sequential.matrix == parallel.matrix);
  const sim::CampaignCell a = sequential.variant_total(0);
  const sim::CampaignCell b = parallel.variant_total(0);
  EXPECT_TRUE(a.by_pc == b.by_pc);
}

TEST(Campaign, QuickModeUsesOneReplicaAndReducedBudget) {
  sim::CampaignSpec spec = tiny_campaign();
  spec.quick = true;
  spec.instructions = 2'000;
  const sim::CampaignResult result = sim::run_campaign(spec);
  EXPECT_EQ(result.spec.replicas, 1u);
  for (const auto& variant_cells : result.matrix.cells) {
    for (const auto& replicas : variant_cells) {
      EXPECT_EQ(replicas.size(), 1u);
    }
  }
}

// --- component-targeted fault sites (DESIGN.md §16) ---------------------------

sim::CampaignSpec site_campaign(std::vector<core::FaultSite> sites) {
  sim::CampaignSpec spec = tiny_campaign();
  spec.sites = std::move(sites);
  return spec;
}

TEST(Campaign, SiteAxisExpandsToLabelResolvableVariants) {
  const sim::CampaignSpec resolved = sim::resolve_campaign_defaults(
      site_campaign({core::FaultSite::kRuu, core::FaultSite::kRQueue}));
  // (reese, baseline) x (ruu, rqueue), labels "base@site".
  ASSERT_EQ(resolved.variants.size(), 4u);
  EXPECT_EQ(resolved.variants[0].label, "reese@ruu");
  EXPECT_EQ(resolved.variants[1].label, "reese@rqueue");
  EXPECT_EQ(resolved.variants[2].label, "baseline@ruu");
  EXPECT_TRUE(resolved.sites.empty());
  for (const sim::CampaignVariant& variant : resolved.variants) {
    // The wire ships labels only: every expanded variant must reconstruct
    // from its label alone, identically.
    sim::CampaignVariant reconstructed;
    ASSERT_TRUE(sim::campaign_variant_by_label(variant.label, &reconstructed))
        << variant.label;
    EXPECT_EQ(reconstructed.site, variant.site);
    EXPECT_EQ(reconstructed.label, variant.label);
  }
  sim::CampaignVariant unused;
  EXPECT_FALSE(sim::campaign_variant_by_label("reese@nosuchsite", &unused));
  EXPECT_FALSE(sim::campaign_variant_by_label("nosuchbase@ruu", &unused));
  EXPECT_FALSE(sim::campaign_variant_by_label("franklin", &unused));
}

TEST(Campaign, SiteMatrixIsBitIdenticalAcrossJobCounts) {
  sim::CampaignSpec spec = site_campaign({core::FaultSite::kRuu,
                                          core::FaultSite::kRQueue,
                                          core::FaultSite::kDCache});
  spec.jobs = 1;
  const sim::CampaignResult sequential = sim::run_campaign(spec);
  spec.jobs = 2;
  const sim::CampaignResult two_jobs = sim::run_campaign(spec);
  spec.jobs = 0;  // auto: hardware concurrency (or $REESE_JOBS)
  const sim::CampaignResult hardware = sim::run_campaign(spec);

  EXPECT_GT(sequential.total_injections(), 0u);
  EXPECT_TRUE(sequential.matrix == two_jobs.matrix);
  EXPECT_TRUE(sequential.matrix == hardware.matrix);
}

TEST(Campaign, EverySiteStrikeResolvesToExactlyOneOutcome) {
  // The conservation law behind the outcome lattice: masked + detected +
  // sdc == injected for every site, with nothing pending and nothing lost.
  // "go" is branch-heavy, so RUU strikes regularly land on entries that a
  // mispredict later squashes — those must come back as masked, not vanish.
  sim::CampaignSpec spec = site_campaign(
      {core::FaultSite::kRuu, core::FaultSite::kRQueue, core::FaultSite::kLsq,
       core::FaultSite::kPredictor, core::FaultSite::kBtb,
       core::FaultSite::kDCache, core::FaultSite::kDTlb});
  spec.workloads = {"go"};
  const sim::CampaignResult result = sim::run_campaign(spec);
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignVariant& variant = result.spec.variants[v];
    const sim::CampaignCell total = result.variant_total(v);
    EXPECT_GT(total.injected, 0u) << variant.label;
    EXPECT_EQ(total.masked + total.detected + total.sdc, total.injected)
        << variant.label;
    EXPECT_EQ(total.pending, 0u) << variant.label;
    EXPECT_EQ(total.undetected, total.sdc) << variant.label;
    if (variant.site == core::FaultSite::kRuu) {
      EXPECT_GT(total.masked, 0u) << variant.label;
    }
  }
}

TEST(Campaign, RQueueSelfFaultsLowerDetectionThanResultFlips) {
  // The §16 headline: strikes into the checker's own queue must show
  // measurably worse detection than the classic result-flip model, and
  // some of them must silently kill pending re-executions.
  sim::CampaignSpec spec = tiny_campaign();
  sim::CampaignVariant reference;
  sim::CampaignVariant rqueue;
  ASSERT_TRUE(sim::campaign_variant_by_label("reese@result", &reference));
  ASSERT_TRUE(sim::campaign_variant_by_label("reese@rqueue", &rqueue));
  spec.variants = {reference, rqueue};
  const sim::CampaignResult result = sim::run_campaign(spec);

  const sim::CampaignCell ref_total = result.variant_total(0);
  const sim::CampaignCell rq_total = result.variant_total(1);
  ASSERT_GT(ref_total.injected, 0u);
  ASSERT_GT(rq_total.injected, 0u);
  const double ref_detection =
      safe_ratio(ref_total.detected, ref_total.injected);
  const double rq_detection = safe_ratio(rq_total.detected, rq_total.injected);
  EXPECT_LT(rq_detection, ref_detection - 0.10);
  EXPECT_GT(rq_total.coverage_loss, 0u);
  EXPECT_EQ(ref_total.coverage_loss, 0u);
}

TEST(Campaign, PredictorAndBtbSitesAreArchitecturallyMasked) {
  const sim::CampaignResult result = sim::run_campaign(
      site_campaign({core::FaultSite::kPredictor, core::FaultSite::kBtb}));
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignCell total = result.variant_total(v);
    EXPECT_GT(total.injected, 0u) << result.spec.variants[v].label;
    EXPECT_EQ(total.detected, 0u) << result.spec.variants[v].label;
    EXPECT_EQ(total.sdc, 0u) << result.spec.variants[v].label;
    EXPECT_EQ(total.masked, total.injected) << result.spec.variants[v].label;
  }
}

TEST(Campaign, ComponentReportSerializesToValidJson) {
  const sim::CampaignResult result =
      sim::run_campaign(site_campaign({core::FaultSite::kRQueue}));
  const std::string json = result.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"label\": \"reese@rqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"site\": \"rqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"masked\""), std::string::npos);
  EXPECT_NE(json.find("\"sdc\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage_loss\""), std::string::npos);
  const std::string csv = result.csv();
  EXPECT_NE(csv.find("masked,sdc,coverage_loss"), std::string::npos);
}

}  // namespace
}  // namespace reese

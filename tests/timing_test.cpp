// Exact-ish timing tests: the pipeline's cycle counts must scale with
// operation latencies the way the configuration says. Each test measures
// the marginal cost (slope) of growing a kernel, which cancels fixed
// startup costs (cold caches, pipeline fill).
#include <gtest/gtest.h>

#include "common/strutil.h"
#include "core/pipeline.h"
#include "isa/assembler.h"

namespace reese {
namespace {

/// Cycles to run a countdown loop whose body is `body` repeated once,
/// iterated `trips` times.
Cycle loop_cycles(const std::string& body, u64 trips,
                  const core::CoreConfig& config) {
  std::string source = format("main:\n  li   s1, %llu\nloop:\n",
                              static_cast<unsigned long long>(trips));
  source += body;
  source += "  addi s1, s1, -1\n  bnez s1, loop\n  halt\n";
  auto assembled = isa::assemble(source);
  EXPECT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();
  core::Pipeline pipeline(program, config);
  EXPECT_EQ(pipeline.run(100'000'000, 100'000'000),
            core::StopReason::kHalted);
  return pipeline.stats().cycles;
}

/// Marginal cycles per loop iteration, startup cancelled.
double slope(const std::string& body, const core::CoreConfig& config) {
  const Cycle small = loop_cycles(body, 200, config);
  const Cycle large = loop_cycles(body, 1200, config);
  return static_cast<double>(large - small) / 1000.0;
}

TEST(Timing, DependentAddChainIsOneCyclePerOp) {
  // 8 dependent addis: critical path 8 cycles per iteration (the loop
  // control overlaps).
  std::string body;
  for (int i = 0; i < 8; ++i) body += "  addi t0, t0, 1\n";
  const double cycles = slope(body, core::starting_config());
  EXPECT_NEAR(cycles, 8.0, 1.0);
}

TEST(Timing, DependentMulChainMatchesMulLatency) {
  // 4 dependent muls at latency 3: ~12 cycles per iteration.
  std::string body;
  for (int i = 0; i < 4; ++i) body += "  mul t0, t0, t1\n";
  core::CoreConfig config = core::starting_config();
  const double cycles = slope(body, config);
  EXPECT_NEAR(cycles, 4.0 * config.int_mul_latency, 2.0);
}

TEST(Timing, MulLatencyConfigRespected) {
  std::string body;
  for (int i = 0; i < 4; ++i) body += "  mul t0, t0, t1\n";
  core::CoreConfig slow = core::starting_config();
  slow.int_mul_latency = 9;
  const double cycles = slope(body, slow);
  EXPECT_NEAR(cycles, 36.0, 3.0);
}

TEST(Timing, DivChainMatchesDivLatency) {
  core::CoreConfig config = core::starting_config();
  const double cycles = slope("  div t0, t0, t1\n  addi t0, t0, 3\n", config);
  // div latency 20 + 1 dependent add.
  EXPECT_NEAR(cycles, 21.0, 3.0);
}

TEST(Timing, IndependentAddsUseAllAlus) {
  // 8 independent add chains on a 4-ALU machine: >= 2 cycles per
  // iteration of 8 adds; loop overhead adds a little.
  std::string body;
  for (int i = 0; i < 8; ++i) {
    body += format("  addi t%d, t%d, 1\n", i % 4, i % 4);
  }
  // Use four independent registers, two adds each: chain depth 2.
  const double cycles = slope(body, core::starting_config());
  EXPECT_LT(cycles, 4.0);
  EXPECT_GE(cycles, 1.9);
}

TEST(Timing, ForwardedLoadIsFast) {
  // store + dependent load of the same address: forwarding, not the
  // 2-cycle cache. Chain: sd (waits t0) -> ld (1 cy) -> addi.
  const std::string body =
      "  sd   t0, 0(gp)\n  ld   t1, 0(gp)\n  add  t0, t0, t1\n";
  const double forwarded = slope(body, core::starting_config());
  // The same chain through *different* addresses (no forwarding: cache).
  const std::string through_cache =
      "  sd   t0, 0(gp)\n  ld   t1, 64(gp)\n  add  t0, t0, t1\n";
  const double cached = slope(through_cache, core::starting_config());
  EXPECT_LE(forwarded, cached + 0.5);
}

TEST(Timing, CacheHitLatencyVisible) {
  // A genuinely loop-carried load: the next load's address depends on the
  // loaded value, so the L1 hit latency is on the critical path.
  const std::string body =
      "  ld   t1, 0(t3)\n"
      "  andi t0, t1, 0\n"   // always 0, but depends on the load
      "  add  t3, gp, t0\n"; // next address depends on t0
  core::CoreConfig config = core::starting_config();
  const double two_cycle = slope(body, config);
  config.memory.dl1.hit_latency = 6;
  const double six_cycle = slope(body, config);
  EXPECT_GT(six_cycle, two_cycle + 3.0);
  EXPECT_NEAR(six_cycle - two_cycle, 4.0, 1.5);  // latency delta
}

TEST(Timing, MispredictPenaltyScales) {
  // A branch that alternates unpredictably? Use a data-driven branch from
  // a pattern that gshare learns perfectly vs a config with a huge
  // mispredict penalty on a static-nottaken predictor (every taken branch
  // mispredicts: the loop back-edge).
  core::CoreConfig fast = core::starting_config();
  fast.predictor = branch::PredictorKind::kNotTaken;
  fast.mispredict_penalty = 1;
  core::CoreConfig slow = fast;
  slow.mispredict_penalty = 21;
  const std::string body = "  addi t0, t0, 1\n";
  const double fast_cycles = slope(body, fast);
  const double slow_cycles = slope(body, slow);
  // Every iteration mispredicts the back-edge; the marginal cost must grow
  // by ~the penalty delta.
  EXPECT_NEAR(slow_cycles - fast_cycles, 20.0, 3.0);
}

TEST(Timing, UnpipelinedDivBlocksSecondDiv) {
  // Two independent divs, one divider: serialized by issue latency.
  const std::string body =
      "  div t2, t0, t1\n  div t3, t0, t1\n  addi t0, t0, 1\n";
  core::CoreConfig config = core::starting_config();
  const double cycles = slope(body, config);
  EXPECT_GT(cycles, 2.0 * config.int_div_latency - 6.0);
}

TEST(Timing, ReeseAddsNoLatencyOnIdleMachine) {
  // A long dependent chain leaves tons of idle capacity: REESE's cycles
  // should be within a few percent of baseline.
  std::string body;
  for (int i = 0; i < 8; ++i) body += "  addi t0, t0, 1\n";
  const double baseline = slope(body, core::starting_config());
  const double reese = slope(body, core::with_reese(core::starting_config()));
  EXPECT_LT(reese, baseline * 1.10);
}

}  // namespace
}  // namespace reese

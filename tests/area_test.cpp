// Die-area model tests (§7 arithmetic).
#include <gtest/gtest.h>

#include "core/area.h"

namespace reese::core {
namespace {

TEST(Area, BaselineAddsNothing) {
  const CoreConfig base = starting_config();
  const AreaEstimate estimate = estimate_area(base, base);
  EXPECT_DOUBLE_EQ(estimate.total_added(), 0.0);
}

TEST(Area, ReeseQueueCostsSlightlyMoreThanRuu) {
  // §7: "the R-stream Queue requires slightly more area than the RUU".
  // Default: 32-entry queue vs 16-entry RUU at 10% of die, entries 1.1x.
  const CoreConfig base = starting_config();
  const AreaEstimate estimate = estimate_area(base, with_reese(base));
  EXPECT_GT(estimate.rqueue_area, 10.0);  // more than the RUU's 10%
  EXPECT_LT(estimate.rqueue_area, 30.0);
}

TEST(Area, TotalNearPaperTwentyPercent) {
  // REESE + 2 spare ALUs should land in the neighbourhood of the paper's
  // "about 20%" total estimate.
  const CoreConfig base = starting_config();
  const AreaEstimate estimate = estimate_area(base, with_reese(base, 2));
  EXPECT_GT(estimate.overhead_pct(), 15.0);
  EXPECT_LT(estimate.overhead_pct(), 35.0);
}

TEST(Area, SpareHardwareScales) {
  const CoreConfig base = starting_config();
  const AreaEstimate none = estimate_area(base, with_reese(base, 0));
  const AreaEstimate two = estimate_area(base, with_reese(base, 2));
  const AreaEstimate mult = estimate_area(base, with_reese(base, 2, 1));
  EXPECT_GT(two.spare_fu_area, none.spare_fu_area);
  EXPECT_GT(mult.spare_fu_area, two.spare_fu_area);
  EXPECT_DOUBLE_EQ(none.spare_fu_area, 0.0);
}

TEST(Area, QueueSizeScalesLinearly) {
  const CoreConfig base = starting_config();
  CoreConfig small = with_reese(base);
  small.reese.rqueue_size = 16;
  CoreConfig large = with_reese(base);
  large.reese.rqueue_size = 64;
  const AreaEstimate small_estimate = estimate_area(base, small);
  const AreaEstimate large_estimate = estimate_area(base, large);
  EXPECT_NEAR(large_estimate.rqueue_area, 4.0 * small_estimate.rqueue_area,
              1e-9);
}

TEST(Area, FranklinHasNoQueueArea) {
  const CoreConfig base = starting_config();
  CoreConfig franklin = with_reese(base);
  franklin.reese.scheme = RedundancyScheme::kFranklin;
  const AreaEstimate estimate = estimate_area(base, franklin);
  EXPECT_DOUBLE_EQ(estimate.rqueue_area, 0.0);
  EXPECT_GT(estimate.glue_area, 0.0);
  EXPECT_LT(estimate.total_added(),
            estimate_area(base, with_reese(base)).total_added());
}

TEST(Area, ReportMentionsComponents) {
  const CoreConfig base = starting_config();
  const std::string report =
      area_report(estimate_area(base, with_reese(base, 2)));
  EXPECT_NE(report.find("R-queue"), std::string::npos);
  EXPECT_NE(report.find("spare FUs"), std::string::npos);
}

TEST(Area, CustomCoefficients) {
  AreaCoefficients coefficients;
  coefficients.rqueue_entry_vs_ruu_entry = 2.0;
  const CoreConfig base = starting_config();
  const AreaEstimate doubled =
      estimate_area(base, with_reese(base), coefficients);
  const AreaEstimate normal = estimate_area(base, with_reese(base));
  EXPECT_NEAR(doubled.rqueue_area, normal.rqueue_area * 2.0 / 1.1, 1e-9);
}

}  // namespace
}  // namespace reese::core

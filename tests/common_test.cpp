// Unit tests for src/common: bit utilities, RNG, statistics, string
// helpers, flags and errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>

#include "common/bitutil.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strutil.h"
#include "common/thread_pool.h"

namespace reese {
namespace {

// --- bitutil -----------------------------------------------------------------

TEST(BitUtil, SignExtendPositive) {
  EXPECT_EQ(sign_extend(0x7F, 8), 0x7F);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0x0, 1), 0);
  EXPECT_EQ(sign_extend(0x1FFF, 14), 0x1FFF);
}

TEST(BitUtil, SignExtendNegative) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x2000, 14), -8192);
  EXPECT_EQ(sign_extend(0x3FFF, 14), -1);
}

TEST(BitUtil, SignExtendFullWidth) {
  EXPECT_EQ(sign_extend(~u64{0}, 64), -1);
  EXPECT_EQ(sign_extend(u64{1} << 63, 64), INT64_MIN);
}

TEST(BitUtil, ExtractBits) {
  EXPECT_EQ(extract_bits(0xABCD, 0, 4), 0xDu);
  EXPECT_EQ(extract_bits(0xABCD, 4, 4), 0xCu);
  EXPECT_EQ(extract_bits(0xABCD, 8, 8), 0xABu);
  EXPECT_EQ(extract_bits(~u64{0}, 0, 64), ~u64{0});
}

TEST(BitUtil, FitsSigned) {
  EXPECT_TRUE(fits_signed(8191, 14));
  EXPECT_FALSE(fits_signed(8192, 14));
  EXPECT_TRUE(fits_signed(-8192, 14));
  EXPECT_FALSE(fits_signed(-8193, 14));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(BitUtil, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(255, 8));
  EXPECT_FALSE(fits_unsigned(256, 8));
  EXPECT_TRUE(fits_unsigned(0, 1));
}

TEST(BitUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(BitUtil, FlipBit) {
  EXPECT_EQ(flip_bit(0, 0), 1u);
  EXPECT_EQ(flip_bit(1, 0), 0u);
  EXPECT_EQ(flip_bit(0, 63), u64{1} << 63);
  // Flipping twice restores.
  EXPECT_EQ(flip_bit(flip_bit(0xDEADBEEF, 17), 17), 0xDEADBEEFu);
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextRangeInclusive) {
  SplitMix64 rng(8);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  SplitMix64 rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkIndependence) {
  SplitMix64 parent(11);
  SplitMix64 child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, UniformityChiSquaredish) {
  SplitMix64 rng(12);
  int buckets[16] = {};
  const int n = 16000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(16)];
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 16, n / 16 / 4);  // within 25% of expectation
  }
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, SafeRatio) {
  EXPECT_DOUBLE_EQ(safe_ratio(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(safe_ratio(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(0, 5), 0.0);
}

TEST(Stats, HistogramBasics) {
  Histogram h(1, 10);
  h.add(0);
  h.add(5);
  h.add(5);
  h.add(9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 19u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.75);
  EXPECT_EQ(h.buckets()[5], 2u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, HistogramOverflow) {
  Histogram h(1, 4);
  h.add(3);
  h.add(4);
  h.add(1000);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(Stats, HistogramBucketWidth) {
  Histogram h(10, 4);
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(39);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Stats, HistogramPercentile) {
  Histogram h(1, 100);
  for (u64 i = 0; i < 100; ++i) h.add(i);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.95)), 95.0, 2.0);
  EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(Stats, HistogramEmpty) {
  Histogram h(1, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, HistogramReset) {
  Histogram h(1, 4);
  h.add(2);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.buckets()[2], 0u);
}

TEST(Stats, HistogramToStringContainsLabel) {
  Histogram h(1, 4);
  h.add(1);
  EXPECT_NE(h.to_string("mylabel").find("mylabel"), std::string::npos);
}

TEST(Stats, RunningStat) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, RunningStatNegative) {
  RunningStat s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Stats, SpearmanPerfectMonotoneAndReversed) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  // Any monotone transform of xs has rho = 1 (rank, not value, based).
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(xs, {10.0, 100.0, 1e3, 1e4}),
                   1.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(xs, {9.0, 7.0, 5.0, 3.0}), -1.0);
}

TEST(Stats, SpearmanAveragesTiedRanks) {
  // xs ranks with the tie averaged: {1, 2.5, 2.5, 4}; the tie-corrected
  // rho against a strictly increasing ys is 4.5/sqrt(4.5*5) = 3/sqrt(10).
  const double rho = spearman_rank_correlation({1.0, 2.0, 2.0, 3.0},
                                               {1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(rho, 3.0 / std::sqrt(10.0), 1e-12);
}

TEST(Stats, SpearmanDegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1.0, 2.0}, {1.0}), 0.0);
  // A constant side has zero rank variance: correlation is undefined.
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({5.0, 5.0, 5.0}, {1.0, 2.0, 3.0}),
                   0.0);
}

// --- strutil ---------------------------------------------------------------------

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StrUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StrUtil, SplitWhitespace) {
  const auto parts = split_whitespace("  one\ttwo   three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(StrUtil, ParseIntDecimal) {
  i64 v = 0;
  EXPECT_TRUE(parse_int("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("-45", &v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(parse_int("+7", &v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(parse_int("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(StrUtil, ParseIntHexBinary) {
  i64 v = 0;
  EXPECT_TRUE(parse_int("0xFF", &v));
  EXPECT_EQ(v, 255);
  EXPECT_TRUE(parse_int("0xdeadBEEF", &v));
  EXPECT_EQ(v, 0xDEADBEEF);
  EXPECT_TRUE(parse_int("-0x10", &v));
  EXPECT_EQ(v, -16);
  EXPECT_TRUE(parse_int("0b1010", &v));
  EXPECT_EQ(v, 10);
}

TEST(StrUtil, ParseIntRejectsGarbage) {
  i64 v = 0;
  EXPECT_FALSE(parse_int("", &v));
  EXPECT_FALSE(parse_int("abc", &v));
  EXPECT_FALSE(parse_int("12x", &v));
  EXPECT_FALSE(parse_int("0x", &v));
  EXPECT_FALSE(parse_int("-", &v));
  EXPECT_FALSE(parse_int("1 2", &v));
}

TEST(StrUtil, ParseIntBounds) {
  i64 v = 0;
  EXPECT_TRUE(parse_int("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(parse_int("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(parse_int("9223372036854775808", &v));
  EXPECT_FALSE(parse_int("99999999999999999999999", &v));
}

TEST(StrUtil, ParseIntTrimsWhitespace) {
  i64 v = 0;
  EXPECT_TRUE(parse_int("  42  ", &v));
  EXPECT_EQ(v, 42);
}

TEST(StrUtil, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
}

TEST(StrUtil, ToLower) {
  EXPECT_EQ(to_lower("AbC"), "abc");
}

// --- flags -----------------------------------------------------------------------

TEST(Flags, ParseSpaceSeparated) {
  const char* argv[] = {"prog", "-ruu", "32", "-name", "li"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(5, argv).ok());
  EXPECT_EQ(flags.get_i64("ruu", 0), 32);
  EXPECT_EQ(flags.get_string("name", ""), "li");
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get_i64("missing", 7), 7);
}

TEST(Flags, ParseColonAndEquals) {
  const char* argv[] = {"prog", "-ruu:64", "--lsq=16"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(3, argv).ok());
  EXPECT_EQ(flags.get_i64("ruu", 0), 64);
  EXPECT_EQ(flags.get_i64("lsq", 0), 16);
}

TEST(Flags, BareFlagIsTrue) {
  const char* argv[] = {"prog", "-verbose"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(2, argv).ok());
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, BoolValues) {
  const char* argv[] = {"prog", "-a", "true", "-b", "0", "-c", "on"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(7, argv).ok());
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
}

TEST(Flags, Positional) {
  const char* argv[] = {"prog", "file.s", "-x", "1", "other"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(5, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file.s");
  EXPECT_EQ(flags.positional()[1], "other");
}

TEST(Flags, ParseFileMergesWithCommandLinePriority) {
  const char* path = "/tmp/reese_flags_test.cfg";
  FILE* f = fopen(path, "w");
  ASSERT_NE(f, nullptr);
  fputs("# comment line\n-ruu 64   -lsq 32\n-workload li # trailing\n", f);
  fclose(f);

  const char* argv[] = {"prog", "-ruu", "16"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(3, argv).ok());
  ASSERT_TRUE(flags.parse_file(path).ok());
  EXPECT_EQ(flags.get_i64("ruu", 0), 16) << "command line must win";
  EXPECT_EQ(flags.get_i64("lsq", 0), 32);
  EXPECT_EQ(flags.get_string("workload", ""), "li");
}

TEST(Flags, ParseFileMissing) {
  FlagSet flags;
  EXPECT_FALSE(flags.parse_file("/nonexistent/definitely.cfg").ok());
}

TEST(Flags, DoubleParsing) {
  const char* argv[] = {"prog", "-rate", "0.25"};
  FlagSet flags;
  ASSERT_TRUE(flags.parse(3, argv).ok());
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.25);
}

// --- error -----------------------------------------------------------------------

TEST(Error, Format) {
  const Error e = errorf("bad %s at %d", "thing", 9);
  EXPECT_EQ(e.message, "bad thing at 9");
  EXPECT_EQ(e.to_string(), "bad thing at 9");
}

TEST(Error, LinePrefix) {
  Error e{"oops", 12};
  EXPECT_EQ(e.to_string(), "line 12: oops");
}

TEST(Error, ResultHoldsValue) {
  Result<int> r = 5;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
}

TEST(Error, ResultHoldsError) {
  Result<int> r = Error{"no", 0};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "no");
}

TEST(Wilson, ZeroTrialsIsAllZero) {
  const WilsonInterval ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.center, 0.0);
  EXPECT_EQ(ci.upper, 0.0);
}

TEST(Wilson, FullSuccessLowerBoundIsNotOne) {
  // At p̂ = 1 the Wald interval collapses to [1, 1]; Wilson's lower bound
  // is n / (n + z²) — the honesty property the coverage claims rely on.
  const double z = 1.96;
  const WilsonInterval ci = wilson_interval(100, 100, z);
  EXPECT_NEAR(ci.lower, 100.0 / (100.0 + z * z), 1e-12);
  EXPECT_NEAR(ci.upper, 1.0, 1e-12);
  EXPECT_LT(ci.lower, 1.0);
}

TEST(Wilson, LowerBoundTightensWithSampleSize) {
  EXPECT_LT(wilson_interval(100, 100).lower, wilson_interval(1000, 1000).lower);
  EXPECT_LT(wilson_interval(1000, 1000).lower,
            wilson_interval(100'000, 100'000).lower);
  // The campaign acceptance bar: 10⁵ all-detected injections put the 95%
  // lower bound far above 99.9%.
  EXPECT_GT(wilson_interval(100'000, 100'000).lower, 0.999);
  // ...and ~4k is the minimum that clears it.
  EXPECT_GT(wilson_interval(4'000, 4'000).lower, 0.999);
  EXPECT_LT(wilson_interval(3'000, 3'000).lower, 0.999);
}

TEST(Wilson, ZeroSuccessesMirrorsFullSuccesses) {
  const WilsonInterval none = wilson_interval(0, 500);
  const WilsonInterval all = wilson_interval(500, 500);
  EXPECT_NEAR(none.lower, 0.0, 1e-12);
  EXPECT_NEAR(none.upper, 1.0 - all.lower, 1e-9);
  EXPECT_GT(none.upper, 0.0);
}

TEST(Wilson, IntervalContainsPointEstimate) {
  const WilsonInterval ci = wilson_interval(37, 120);
  const double p = 37.0 / 120.0;
  EXPECT_LT(ci.lower, p);
  EXPECT_GT(ci.upper, p);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_LT(ci.upper, 1.0);
}

// --jobs sanitization: out-of-range requests (the old code cast -3 to
// ~4 billion and tried to spawn that many threads) fall back to auto (0 =
// hardware concurrency) instead of being honored or silently ignored.
TEST(Jobs, SanitizeAcceptsReasonableCounts) {
  EXPECT_EQ(sanitize_job_count(1), 1u);
  EXPECT_EQ(sanitize_job_count(7), 7u);
  EXPECT_EQ(sanitize_job_count(static_cast<i64>(kMaxJobRequest)),
            kMaxJobRequest);
}

TEST(Jobs, SanitizeRejectsZeroNegativeAndHuge) {
  EXPECT_EQ(sanitize_job_count(0), 0u);
  EXPECT_EQ(sanitize_job_count(-3), 0u);
  EXPECT_EQ(sanitize_job_count(static_cast<i64>(kMaxJobRequest) + 1), 0u);
  EXPECT_EQ(sanitize_job_count(1'000'000), 0u);
}

TEST(Jobs, ResolveNeverReturnsZeroWorkers) {
  EXPECT_GE(resolve_job_count(0), 1u);
  EXPECT_EQ(resolve_job_count(3), 3u);
}

TEST(TaskQueue, RunsAdmittedTasksAndDrains) {
  std::atomic<int> ran{0};
  {
    TaskQueue queue(2, 8);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(queue.try_enqueue([&ran] { ++ran; }));
    }
    queue.drain();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(queue.queued(), 0u);
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskQueue, RejectsBeyondCapacityWhileWorkerIsBusy) {
  std::mutex gate;
  gate.lock();  // hold the single worker inside the first task
  TaskQueue queue(1, 1);
  std::atomic<bool> started{false};
  ASSERT_TRUE(queue.try_enqueue([&] {
    started.store(true);
    std::lock_guard<std::mutex> wait(gate);
  }));
  while (!started.load()) std::this_thread::yield();
  // Worker busy: one waiting slot admits, the next submit is refused.
  EXPECT_TRUE(queue.try_enqueue([] {}));
  EXPECT_FALSE(queue.try_enqueue([] {}));
  EXPECT_EQ(queue.queued(), 1u);
  gate.unlock();
  queue.drain();
  EXPECT_EQ(queue.queued(), 0u);
  EXPECT_EQ(queue.running(), 0u);
}

TEST(TaskQueue, DestructorFinishesAdmittedWork) {
  std::atomic<int> ran{0};
  {
    TaskQueue queue(1, 16);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(queue.try_enqueue([&ran] { ++ran; }));
    }
  }  // destructor drains before joining
  EXPECT_EQ(ran.load(), 10);
}

TEST(Json, ParsesScalarsAndStructure) {
  const Result<json::Value> parsed = json::parse_json(
      R"({"a": 1, "b": -2.5, "c": [true, false, null], "d": "x\nA"})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.find("a"), nullptr);
  EXPECT_TRUE(root.find("a")->is_integer);
  EXPECT_EQ(root.find("a")->uint_value, 1u);
  EXPECT_DOUBLE_EQ(root.find("b")->number, -2.5);
  ASSERT_TRUE(root.find("c")->is_array());
  EXPECT_EQ(root.find("c")->array.size(), 3u);
  EXPECT_TRUE(root.find("c")->array[2].is_null());
  EXPECT_EQ(root.find("d")->string, "x\nA");
}

TEST(Json, PreservesFullU64Seeds) {
  // 0xFA17C0DE-style campaign seeds and anything above 2^53 must survive
  // the round trip exactly — a double would round them.
  const Result<json::Value> parsed =
      json::parse_json(R"({"seed": 18446744073709551615})");
  ASSERT_TRUE(parsed.ok());
  const json::Value* seed = parsed.value().find("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_TRUE(seed->is_integer);
  EXPECT_EQ(seed->uint_value, 18446744073709551615ull);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse_json("").ok());
  EXPECT_FALSE(json::parse_json("{\"a\": }").ok());
  EXPECT_FALSE(json::parse_json("{\"a\": 1,}").ok());
  EXPECT_FALSE(json::parse_json("[1, 2").ok());
  EXPECT_FALSE(json::parse_json("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(json::parse_json("\"unterminated").ok());
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse_json(deep).ok());
}

}  // namespace
}  // namespace reese

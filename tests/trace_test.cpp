// Pipeline tracer tests: lifecycle events must arrive in a sane order and
// the timeline must reflect the REESE dual-execution structure.
#include <gtest/gtest.h>

#include "common/strutil.h"
#include "core/pipeline.h"
#include "core/trace.h"
#include "isa/assembler.h"

namespace reese {
namespace {

isa::Program tiny_program() {
  auto assembled = isa::assemble(R"(
main:
  li   t0, 4
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  EXPECT_TRUE(assembled.ok());
  return std::move(assembled).value();
}

TEST(Trace, BaselineLifecycleOrdering) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(256);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  ASSERT_GT(tracer.rows().size(), 5u);
  for (const auto& row : tracer.rows()) {
    if (row.squashed || row.spec) continue;
    EXPECT_GT(row.dispatch, 0u);
    EXPECT_GE(row.issue, row.dispatch);
    EXPECT_GT(row.complete, row.issue);
    EXPECT_GT(row.commit, row.complete);
    // Baseline: no R-stream events.
    EXPECT_EQ(row.r_issue, 0u);
    EXPECT_EQ(row.r_complete, 0u);
  }
}

TEST(Trace, ReeseLifecycleIncludesRStream) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(256);
  core::Pipeline pipeline(program,
                          core::with_reese(core::starting_config()));
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  usize full_lifecycles = 0;
  for (const auto& row : tracer.rows()) {
    if (row.squashed || row.spec) continue;
    if (row.commit == 0) continue;
    ++full_lifecycles;
    EXPECT_GT(row.release, row.issue);
    EXPECT_GE(row.r_issue, row.release);
    EXPECT_GT(row.r_complete, row.r_issue);
    EXPECT_GE(row.commit, row.r_complete);
  }
  EXPECT_GT(full_lifecycles, 5u);
}

TEST(Trace, WrongPathRowsAreMarkedSquashed) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(512);
  core::CoreConfig config = core::starting_config();
  config.predictor = branch::PredictorKind::kTaken;  // guaranteed mispredicts
  core::Pipeline pipeline(program, config);
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  usize squashed = 0;
  for (const auto& row : tracer.rows()) {
    if (row.squashed) {
      ++squashed;
      EXPECT_TRUE(row.spec);
      EXPECT_EQ(row.commit, 0u);
    }
  }
  EXPECT_GT(squashed, 0u);
}

TEST(Trace, RenderedTableHasHeaderAndRows) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(32);
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  pipeline.set_tracer(&tracer);
  pipeline.run(1'000, 100'000);
  const std::string table = tracer.to_string();
  EXPECT_NE(table.find("instruction"), std::string::npos);
  EXPECT_NE(table.find("addi t0, t0, -1"), std::string::npos);
  EXPECT_NE(table.find("halt"), std::string::npos);
}

TEST(Trace, RenderedTableIncludesReleaseColumn) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(256);
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  const std::string table = tracer.to_string();
  // All ten columns, RL (release) between WB and RI.
  const usize wb = table.find(" WB");
  const usize rl = table.find(" RL");
  const usize ri = table.find(" RI");
  ASSERT_NE(wb, std::string::npos);
  ASSERT_NE(rl, std::string::npos);
  ASSERT_NE(ri, std::string::npos);
  EXPECT_LT(wb, rl);
  EXPECT_LT(rl, ri);

  // A committed REESE row's release cycle must appear in its line, in
  // column position between complete and r_issue.
  for (const auto& row : tracer.rows()) {
    if (row.spec || row.squashed || row.commit == 0 || row.release == 0) {
      continue;
    }
    const std::string line = format(
        "%7llu%7llu%7llu", static_cast<unsigned long long>(row.complete),
        static_cast<unsigned long long>(row.release),
        static_cast<unsigned long long>(row.r_issue));
    EXPECT_NE(table.find(line), std::string::npos)
        << "WB/RL/RI cell sequence missing for seq " << row.seq;
    return;  // one definitive row is enough
  }
  FAIL() << "no committed row with a release cycle";
}

// Direct-event tests for the (seq, spec) find index.

core::TraceEvent make_event(core::TraceKind kind, Cycle cycle, InstSeq seq,
                            bool spec = false) {
  core::TraceEvent event;
  event.kind = kind;
  event.cycle = cycle;
  event.seq = seq;
  event.pc = 0x1000 + 4 * seq;
  event.inst = isa::Instruction{};
  event.spec = spec;
  return event;
}

TEST(Trace, IndexDropsEvictedRowsAndKeepsLiveOnes) {
  core::TimelineTracer tracer(2);
  tracer.record(make_event(core::TraceKind::kDispatch, 10, 1));
  tracer.record(make_event(core::TraceKind::kDispatch, 11, 2));
  tracer.record(make_event(core::TraceKind::kDispatch, 12, 3));  // evicts 1
  ASSERT_EQ(tracer.rows().size(), 2u);
  EXPECT_EQ(tracer.rows().front().seq, 2u);

  // A late event for the evicted seq is ignored, not misattributed.
  tracer.record(make_event(core::TraceKind::kCommit, 13, 1));
  for (const auto& row : tracer.rows()) EXPECT_EQ(row.commit, 0u);

  // Live rows still resolve after the eviction shifted the deque.
  tracer.record(make_event(core::TraceKind::kIssue, 14, 2));
  tracer.record(make_event(core::TraceKind::kIssue, 15, 3));
  EXPECT_EQ(tracer.rows()[0].issue, 14u);
  EXPECT_EQ(tracer.rows()[1].issue, 15u);
}

TEST(Trace, IndexKeepsWrongPathAndTruePathSeparate) {
  core::TimelineTracer tracer(8);
  // A wrong-path entry and a true-path instruction can share a seq.
  tracer.record(make_event(core::TraceKind::kDispatch, 10, 5, true));
  tracer.record(make_event(core::TraceKind::kDispatch, 11, 5, false));
  tracer.record(make_event(core::TraceKind::kSquash, 12, 5, true));
  tracer.record(make_event(core::TraceKind::kCommit, 13, 5, false));
  ASSERT_EQ(tracer.rows().size(), 2u);
  EXPECT_TRUE(tracer.rows()[0].spec);
  EXPECT_TRUE(tracer.rows()[0].squashed);
  EXPECT_EQ(tracer.rows()[0].commit, 0u);
  EXPECT_FALSE(tracer.rows()[1].spec);
  EXPECT_FALSE(tracer.rows()[1].squashed);
  EXPECT_EQ(tracer.rows()[1].commit, 13u);
}

TEST(Trace, IndexPointsAtMostRecentRowOnSeqReuse) {
  core::TimelineTracer tracer(8);
  // Wrong-path seqs recur after a squash: the same (seq, spec) key is
  // dispatched twice. Later events must land in the newest row — the old
  // reverse-scan semantics.
  tracer.record(make_event(core::TraceKind::kDispatch, 10, 7, true));
  tracer.record(make_event(core::TraceKind::kSquash, 11, 7, true));
  tracer.record(make_event(core::TraceKind::kDispatch, 20, 7, true));
  tracer.record(make_event(core::TraceKind::kIssue, 21, 7, true));
  ASSERT_EQ(tracer.rows().size(), 2u);
  EXPECT_TRUE(tracer.rows()[0].squashed);
  EXPECT_EQ(tracer.rows()[0].issue, 0u);
  EXPECT_FALSE(tracer.rows()[1].squashed);
  EXPECT_EQ(tracer.rows()[1].issue, 21u);

  // Seven more dispatches evict exactly the OLDER seq-7 duplicate. The
  // eviction must not orphan the newer row's index entry (the guard that
  // only erases when the entry still points at the evicted row).
  for (InstSeq seq = 100; seq < 107; ++seq) {
    tracer.record(make_event(core::TraceKind::kDispatch, 30 + seq, seq));
  }
  ASSERT_EQ(tracer.rows().size(), 8u);
  ASSERT_EQ(tracer.rows().front().dispatch, 20u);  // the newer seq-7 row
  tracer.record(make_event(core::TraceKind::kComplete, 50, 7, true));
  EXPECT_EQ(tracer.rows().front().complete, 50u);

  // One more dispatch scrolls the newer seq-7 row out too; its events are
  // then dropped rather than misattributed.
  tracer.record(make_event(core::TraceKind::kDispatch, 40, 107));
  tracer.record(make_event(core::TraceKind::kRIssue, 55, 7, true));
  for (const auto& row : tracer.rows()) EXPECT_EQ(row.r_issue, 0u);
  tracer.record(make_event(core::TraceKind::kIssue, 60, 106));
  EXPECT_EQ(tracer.rows()[6].issue, 60u);
}

TEST(Trace, CapacityBoundsRows) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(4);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&tracer);
  pipeline.run(1'000, 100'000);
  EXPECT_LE(tracer.rows().size(), 4u);
  EXPECT_GT(tracer.events_seen(), 10u);
}

TEST(Trace, KindNamesComplete) {
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kDispatch), "dispatch");
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kRComplete),
               "r-complete");
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kError), "error");
}

}  // namespace
}  // namespace reese

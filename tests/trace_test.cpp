// Pipeline tracer tests: lifecycle events must arrive in a sane order and
// the timeline must reflect the REESE dual-execution structure.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/trace.h"
#include "isa/assembler.h"

namespace reese {
namespace {

isa::Program tiny_program() {
  auto assembled = isa::assemble(R"(
main:
  li   t0, 4
loop:
  addi t0, t0, -1
  bnez t0, loop
  out  t0
  halt
)");
  EXPECT_TRUE(assembled.ok());
  return std::move(assembled).value();
}

TEST(Trace, BaselineLifecycleOrdering) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(256);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  ASSERT_GT(tracer.rows().size(), 5u);
  for (const auto& row : tracer.rows()) {
    if (row.squashed || row.spec) continue;
    EXPECT_GT(row.dispatch, 0u);
    EXPECT_GE(row.issue, row.dispatch);
    EXPECT_GT(row.complete, row.issue);
    EXPECT_GT(row.commit, row.complete);
    // Baseline: no R-stream events.
    EXPECT_EQ(row.r_issue, 0u);
    EXPECT_EQ(row.r_complete, 0u);
  }
}

TEST(Trace, ReeseLifecycleIncludesRStream) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(256);
  core::Pipeline pipeline(program,
                          core::with_reese(core::starting_config()));
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  usize full_lifecycles = 0;
  for (const auto& row : tracer.rows()) {
    if (row.squashed || row.spec) continue;
    if (row.commit == 0) continue;
    ++full_lifecycles;
    EXPECT_GT(row.release, row.issue);
    EXPECT_GE(row.r_issue, row.release);
    EXPECT_GT(row.r_complete, row.r_issue);
    EXPECT_GE(row.commit, row.r_complete);
  }
  EXPECT_GT(full_lifecycles, 5u);
}

TEST(Trace, WrongPathRowsAreMarkedSquashed) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(512);
  core::CoreConfig config = core::starting_config();
  config.predictor = branch::PredictorKind::kTaken;  // guaranteed mispredicts
  core::Pipeline pipeline(program, config);
  pipeline.set_tracer(&tracer);
  ASSERT_EQ(pipeline.run(1'000, 100'000), core::StopReason::kHalted);

  usize squashed = 0;
  for (const auto& row : tracer.rows()) {
    if (row.squashed) {
      ++squashed;
      EXPECT_TRUE(row.spec);
      EXPECT_EQ(row.commit, 0u);
    }
  }
  EXPECT_GT(squashed, 0u);
}

TEST(Trace, RenderedTableHasHeaderAndRows) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(32);
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  pipeline.set_tracer(&tracer);
  pipeline.run(1'000, 100'000);
  const std::string table = tracer.to_string();
  EXPECT_NE(table.find("instruction"), std::string::npos);
  EXPECT_NE(table.find("addi t0, t0, -1"), std::string::npos);
  EXPECT_NE(table.find("halt"), std::string::npos);
}

TEST(Trace, CapacityBoundsRows) {
  const isa::Program program = tiny_program();
  core::TimelineTracer tracer(4);
  core::Pipeline pipeline(program, core::starting_config());
  pipeline.set_tracer(&tracer);
  pipeline.run(1'000, 100'000);
  EXPECT_LE(tracer.rows().size(), 4u);
  EXPECT_GT(tracer.events_seen(), 10u);
}

TEST(Trace, KindNamesComplete) {
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kDispatch), "dispatch");
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kRComplete),
               "r-complete");
  EXPECT_STREQ(core::trace_kind_name(core::TraceKind::kError), "error");
}

}  // namespace
}  // namespace reese

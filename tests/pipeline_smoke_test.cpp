// End-to-end smoke tests: small assembly programs must produce identical
// architectural results on the golden ISS, the baseline pipeline, and the
// REESE pipeline — and REESE must execute every instruction twice.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "isa/assembler.h"
#include "isa/iss.h"

namespace reese {
namespace {

isa::Program assemble_or_die(const char* source) {
  auto result = isa::assemble(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return std::move(result).value();
}

struct RunOutcome {
  u64 out_hash;
  u64 out_count;
  u64 committed;
  Cycle cycles;
  u64 mem_hash;
};

RunOutcome run_pipeline(const isa::Program& program, core::CoreConfig config) {
  core::Pipeline pipeline(program, config);
  const core::StopReason reason =
      pipeline.run(/*commit_target=*/10'000'000, /*cycle_limit=*/10'000'000);
  EXPECT_EQ(reason, core::StopReason::kHalted);
  return RunOutcome{pipeline.arch_state().out_hash,
                    pipeline.arch_state().out_count,
                    pipeline.stats().committed, pipeline.stats().cycles,
                    pipeline.memory().content_hash()};
}

constexpr char kCountdownLoop[] = R"(
main:
  li   t0, 1000
  li   t1, 0
loop:
  add  t1, t1, t0
  addi t0, t0, -1
  bnez t0, loop
  out  t1
  halt
)";

constexpr char kMemoryKernel[] = R"(
  .data
array: .space 800
  .text
main:
  la   s0, array
  li   t0, 100        # count
  li   t1, 7
fill:
  sd   t1, 0(s0)
  addi s0, s0, 8
  addi t1, t1, 13
  addi t0, t0, -1
  bnez t0, fill
  la   s0, array
  li   t0, 100
  li   t2, 0
sum:
  ld   t3, 0(s0)
  add  t2, t2, t3
  addi s0, s0, 8
  addi t0, t0, -1
  bnez t0, sum
  out  t2
  halt
)";

constexpr char kCallKernel[] = R"(
main:
  li   sp, 0x8000000
  li   a0, 12
  call fib
  out  a0
  halt
fib:                    # naive recursive fibonacci
  li   t0, 2
  blt  a0, t0, base
  addi sp, sp, -24
  sd   ra, 0(sp)
  sd   a0, 8(sp)
  addi a0, a0, -1
  call fib
  sd   a0, 16(sp)
  ld   a0, 8(sp)
  addi a0, a0, -2
  call fib
  ld   t1, 16(sp)
  add  a0, a0, t1
  ld   ra, 0(sp)
  addi sp, sp, 24
  ret
base:
  ret
)";

constexpr char kMulDivKernel[] = R"(
main:
  li   t0, 50
  li   t1, 3
  li   t2, 1
  li   t4, 1000003
loop:
  mul  t2, t2, t1
  rem  t2, t2, t4
  div  t3, t2, t1
  add  t2, t2, t3
  addi t0, t0, -1
  bnez t0, loop
  out  t2
  halt
)";

class SmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmokeTest, BaselineMatchesIss) {
  const isa::Program program = assemble_or_die(GetParam());
  isa::Iss iss(program);
  const isa::IssResult golden = iss.run(10'000'000);
  ASSERT_TRUE(golden.halted);

  const RunOutcome outcome = run_pipeline(program, core::starting_config());
  EXPECT_EQ(outcome.out_hash, golden.out_hash);
  EXPECT_EQ(outcome.out_count, golden.out_count);
  EXPECT_EQ(outcome.committed, golden.executed_instructions);
  EXPECT_EQ(outcome.mem_hash, iss.memory().content_hash());
}

TEST_P(SmokeTest, ReeseMatchesIss) {
  const isa::Program program = assemble_or_die(GetParam());
  isa::Iss iss(program);
  const isa::IssResult golden = iss.run(10'000'000);
  ASSERT_TRUE(golden.halted);

  const RunOutcome outcome =
      run_pipeline(program, core::with_reese(core::starting_config()));
  EXPECT_EQ(outcome.out_hash, golden.out_hash);
  EXPECT_EQ(outcome.committed, golden.executed_instructions);
  EXPECT_EQ(outcome.mem_hash, iss.memory().content_hash());
}

TEST_P(SmokeTest, ReeseExecutesEverythingTwice) {
  const isa::Program program = assemble_or_die(GetParam());
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  ASSERT_EQ(pipeline.run(10'000'000, 10'000'000), core::StopReason::kHalted);
  const core::CoreStats& stats = pipeline.stats();
  EXPECT_EQ(stats.comparisons, stats.committed);
  EXPECT_EQ(stats.committed_r, stats.committed);
  EXPECT_EQ(stats.errors_detected, 0u);
  EXPECT_EQ(stats.rqueue_enqueued, stats.committed);
}

TEST_P(SmokeTest, ReeseIsSlowerOrEqualButNotDoubled) {
  const isa::Program program = assemble_or_die(GetParam());
  const RunOutcome baseline = run_pipeline(program, core::starting_config());
  const RunOutcome reese =
      run_pipeline(program, core::with_reese(core::starting_config()));
  EXPECT_GE(reese.cycles * 100, baseline.cycles * 95)
      << "REESE should not be meaningfully faster than baseline";
  EXPECT_LE(reese.cycles, baseline.cycles * 2 + 200)
      << "REESE must cost far less than full re-run";
}

INSTANTIATE_TEST_SUITE_P(Programs, SmokeTest,
                         ::testing::Values(kCountdownLoop, kMemoryKernel,
                                           kCallKernel, kMulDivKernel));

}  // namespace
}  // namespace reese

// Workload validation: every registered workload must assemble, run to a
// clean HALT on the golden ISS, publish checksums, be deterministic, and
// produce identical architectural results on the baseline and REESE
// pipelines.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "isa/iss.h"
#include "workloads/workload.h"

namespace reese {
namespace {

constexpr u64 kIterations = 8;
constexpr u64 kMaxInstructions = 4'000'000;

workloads::Workload make(const std::string& name, u64 iterations,
                         u64 seed = 0x5EED5EED) {
  workloads::WorkloadOptions options;
  options.iterations = iterations;
  options.seed = seed;
  auto result = workloads::make_workload(name, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, RunsToHaltOnIss) {
  const workloads::Workload workload = make(GetParam(), kIterations);
  isa::Iss iss(workload.program);
  const isa::IssResult result = iss.run(kMaxInstructions);
  EXPECT_TRUE(result.halted) << "workload did not HALT (bad_pc="
                             << result.bad_pc << ", pc=" << result.final_pc
                             << ")";
  EXPECT_EQ(result.out_count, kIterations)
      << "expected one OUT checksum per iteration";
  EXPECT_GT(result.executed_instructions, 100u * kIterations);
}

TEST_P(WorkloadTest, IsDeterministic) {
  const workloads::Workload first = make(GetParam(), kIterations);
  const workloads::Workload second = make(GetParam(), kIterations);
  isa::Iss iss_first(first.program);
  isa::Iss iss_second(second.program);
  const isa::IssResult a = iss_first.run(kMaxInstructions);
  const isa::IssResult b = iss_second.run(kMaxInstructions);
  EXPECT_EQ(a.out_hash, b.out_hash);
  EXPECT_EQ(a.executed_instructions, b.executed_instructions);
}

TEST_P(WorkloadTest, SeedChangesData) {
  // Different seeds must produce different checksums for data-driven
  // kernels (the fixed ones — pure arithmetic — are exempt).
  const std::string name = GetParam();
  if (name == "ilp_chain" || name == "dep_chain" || name == "div_heavy" ||
      name == "li" || name == "vortex" || name == "mem_stream") {
    GTEST_SKIP() << "kernel has no seeded data tables";
  }
  const workloads::Workload workload_a = make(name, kIterations, 1);
  const workloads::Workload workload_b = make(name, kIterations, 2);
  isa::Iss iss_a(workload_a.program);
  isa::Iss iss_b(workload_b.program);
  EXPECT_NE(iss_a.run(kMaxInstructions).out_hash,
            iss_b.run(kMaxInstructions).out_hash);
}

TEST_P(WorkloadTest, BaselinePipelineMatchesIss) {
  const workloads::Workload workload = make(GetParam(), kIterations);
  isa::Iss iss(workload.program);
  const isa::IssResult golden = iss.run(kMaxInstructions);
  ASSERT_TRUE(golden.halted);

  core::Pipeline pipeline(workload.program, core::starting_config());
  ASSERT_EQ(pipeline.run(kMaxInstructions, 8 * kMaxInstructions),
            core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.stats().committed, golden.executed_instructions);
  EXPECT_EQ(pipeline.memory().content_hash(), iss.memory().content_hash());
}

TEST_P(WorkloadTest, ReesePipelineMatchesIss) {
  const workloads::Workload workload = make(GetParam(), kIterations);
  isa::Iss iss(workload.program);
  const isa::IssResult golden = iss.run(kMaxInstructions);
  ASSERT_TRUE(golden.halted);

  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  ASSERT_EQ(pipeline.run(kMaxInstructions, 8 * kMaxInstructions),
            core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.stats().committed, golden.executed_instructions);
  EXPECT_EQ(pipeline.stats().comparisons, pipeline.stats().committed);
  EXPECT_EQ(pipeline.stats().errors_detected, 0u);
}

TEST_P(WorkloadTest, InfiniteVariantKeepsRunning) {
  const workloads::Workload workload = make(GetParam(), /*iterations=*/0);
  core::Pipeline pipeline(workload.program, core::starting_config());
  EXPECT_EQ(pipeline.run(/*commit_target=*/50'000, /*cycle_limit=*/5'000'000),
            core::StopReason::kCommitTarget);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    ::testing::ValuesIn(workloads::all_workload_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace reese

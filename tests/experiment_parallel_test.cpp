// Determinism tests for the parallel experiment grid runner: the result
// matrix (per-cell IPC, cycles, committed counts, stop reasons) must be
// bit-identical no matter how many workers ran it.
#include "sim/experiment.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace reese::sim {
namespace {

ExperimentSpec small_grid(u32 jobs) {
  ExperimentSpec spec;
  spec.title = "parallel determinism grid";
  spec.base = core::starting_config();
  spec.models = {Model::kBaseline, Model::kReese};
  spec.workloads = {"gcc", "li"};
  spec.instructions = 5'000;
  spec.extra_seeds = {0xAB12, 0xCD34};
  spec.jobs = jobs;
  return spec;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (usize w = 0; w < a.cells.size(); ++w) {
    ASSERT_EQ(a.cells[w].size(), b.cells[w].size());
    for (usize m = 0; m < a.cells[w].size(); ++m) {
      ASSERT_EQ(a.cells[w][m].size(), b.cells[w][m].size());
      for (usize s = 0; s < a.cells[w][m].size(); ++s) {
        const ExperimentCell& lhs = a.cells[w][m][s];
        const ExperimentCell& rhs = b.cells[w][m][s];
        EXPECT_EQ(lhs.ipc, rhs.ipc) << "w=" << w << " m=" << m << " s=" << s;
        EXPECT_EQ(lhs.cycles, rhs.cycles);
        EXPECT_EQ(lhs.committed, rhs.committed);
        EXPECT_EQ(lhs.stop, rhs.stop);
      }
    }
  }
  // The derived matrices must match exactly too (same summation order).
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.ipc_stdev, b.ipc_stdev);
}

TEST(ExperimentParallelTest, TwoJobsMatchesSequential) {
  const ExperimentResult seq = run_experiment(small_grid(1));
  const ExperimentResult par = run_experiment(small_grid(2));
  expect_identical(seq, par);
  EXPECT_EQ(seq.cells, par.cells);  // the operator== the perf harness uses
}

TEST(ExperimentParallelTest, HardwareConcurrencyMatchesSequential) {
  const u32 hardware = std::max(1u, std::thread::hardware_concurrency());
  const ExperimentResult seq = run_experiment(small_grid(1));
  const ExperimentResult par = run_experiment(small_grid(hardware));
  expect_identical(seq, par);
}

TEST(ExperimentParallelTest, RepeatedParallelRunsAreStable) {
  const ExperimentResult first = run_experiment(small_grid(4));
  const ExperimentResult second = run_experiment(small_grid(4));
  expect_identical(first, second);
}

TEST(ExperimentParallelTest, CellsRecordPlausibleOutcomes) {
  const ExperimentResult result = run_experiment(small_grid(2));
  for (const auto& per_model : result.cells) {
    for (const auto& per_seed : per_model) {
      for (const ExperimentCell& cell : per_seed) {
        EXPECT_GT(cell.ipc, 0.0);
        EXPECT_GT(cell.cycles, 0u);
        EXPECT_GE(cell.committed, 5'000u);
        EXPECT_EQ(cell.stop, core::StopReason::kCommitTarget);
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& hit : hits) hit = 0;
  pool.parallel_for(hits.size(), [&](usize i) { ++hits[i]; });
  for (usize i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<usize> sum{0};
    pool.parallel_for(100, [&](usize i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(seen.size(),
                    [&](usize i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](usize) { FAIL() << "must not be called"; });
}

TEST(ResolveJobCountTest, PositiveRequestWins) {
  EXPECT_EQ(resolve_job_count(3), 3u);
  EXPECT_EQ(resolve_job_count(1), 1u);
}

TEST(ResolveJobCountTest, AutoIsAtLeastOne) {
  EXPECT_GE(resolve_job_count(0), 1u);
}

}  // namespace
}  // namespace reese::sim

// Differential fuzzing: randomly generated structured programs must
// produce bit-identical architectural results on the golden ISS, the
// baseline pipeline, REESE (several configurations) and Franklin. This is
// the heaviest correctness artillery in the suite — any divergence in
// speculation recovery, forwarding, memory ordering or the comparator
// shows up as a hash mismatch with a reproducible seed.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "isa/iss.h"
#include "workloads/fuzz.h"

namespace reese {
namespace {

constexpr u64 kMaxInstructions = 400'000;

struct Golden {
  u64 out_hash;
  u64 mem_hash;
  u64 instructions;
};

Golden run_golden(const isa::Program& program) {
  isa::Iss iss(program);
  const isa::IssResult result = iss.run(kMaxInstructions);
  EXPECT_TRUE(result.halted) << "fuzz program did not halt (bad_pc="
                             << result.bad_pc << ")";
  return {result.out_hash, iss.memory().content_hash(),
          result.executed_instructions};
}

void expect_pipeline_matches(const isa::Program& program, const Golden& golden,
                             const core::CoreConfig& config,
                             const char* label, u64 seed) {
  core::Pipeline pipeline(program, config);
  ASSERT_EQ(pipeline.run(kMaxInstructions, 64 * kMaxInstructions),
            core::StopReason::kHalted)
      << label << " seed=" << seed;
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash)
      << label << " seed=" << seed;
  EXPECT_EQ(pipeline.memory().content_hash(), golden.mem_hash)
      << label << " seed=" << seed;
  EXPECT_EQ(pipeline.stats().committed, golden.instructions)
      << label << " seed=" << seed;
  EXPECT_EQ(pipeline.stats().errors_detected, 0u) << label << " seed=" << seed;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllEnginesAgree) {
  const u64 seed = static_cast<u64>(GetParam()) * 7919 + 13;
  workloads::FuzzOptions options;
  options.seed = seed;
  const isa::Program program = workloads::generate_fuzz_program(options);
  const Golden golden = run_golden(program);
  ASSERT_GT(golden.instructions, 50u);

  expect_pipeline_matches(program, golden, core::starting_config(),
                          "baseline", seed);
  expect_pipeline_matches(program, golden,
                          core::with_reese(core::starting_config()), "reese",
                          seed);

  core::CoreConfig tiny = core::with_reese(core::starting_config());
  tiny.ruu_size = 4;
  tiny.lsq_size = 2;
  tiny.reese.rqueue_size = 4;
  expect_pipeline_matches(program, golden, tiny, "reese-tiny", seed);

  core::CoreConfig franklin = core::with_reese(core::starting_config());
  franklin.reese.scheme = core::RedundancyScheme::kFranklin;
  expect_pipeline_matches(program, golden, franklin, "franklin", seed);
}

TEST_P(FuzzTest, PartialAndNoEarlyReleaseAgree) {
  const u64 seed = static_cast<u64>(GetParam()) * 104729 + 7;
  workloads::FuzzOptions options;
  options.seed = seed;
  options.segments = 25;
  const isa::Program program = workloads::generate_fuzz_program(options);
  const Golden golden = run_golden(program);

  core::CoreConfig partial = core::with_reese(core::starting_config());
  partial.reese.reexec_interval = 3;
  expect_pipeline_matches(program, golden, partial, "reese-k3", seed);

  core::CoreConfig no_early = core::with_reese(core::starting_config());
  no_early.reese.early_release = false;
  expect_pipeline_matches(program, golden, no_early, "reese-hold", seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

TEST(FuzzGenerator, SourceIsDeterministic) {
  workloads::FuzzOptions options;
  options.seed = 42;
  EXPECT_EQ(workloads::generate_fuzz_source(options),
            workloads::generate_fuzz_source(options));
}

TEST(FuzzGenerator, SeedsChangePrograms) {
  workloads::FuzzOptions a;
  a.seed = 1;
  workloads::FuzzOptions b;
  b.seed = 2;
  EXPECT_NE(workloads::generate_fuzz_source(a),
            workloads::generate_fuzz_source(b));
}

TEST(FuzzGenerator, FeatureTogglesRespected) {
  workloads::FuzzOptions options;
  options.seed = 9;
  options.with_memory = false;
  options.with_muldiv = false;
  options.with_calls = false;
  const std::string source = workloads::generate_fuzz_source(options);
  EXPECT_EQ(source.find(" mul "), std::string::npos);
  EXPECT_EQ(source.find(" div "), std::string::npos);
  EXPECT_EQ(source.find("call leaf"), std::string::npos);
  // Must still assemble and halt.
  const isa::Program program = workloads::generate_fuzz_program(options);
  isa::Iss iss(program);
  EXPECT_TRUE(iss.run(kMaxInstructions).halted);
}

}  // namespace
}  // namespace reese

// Unit tests for the core's supporting structures: the R-stream Queue
// container and the speculative data-memory overlay.
#include <gtest/gtest.h>

#include "core/rstream.h"
#include "core/spec_overlay.h"

namespace reese::core {
namespace {

// --- RStreamQueue ----------------------------------------------------------

TEST(RStreamQueue, FifoOrder) {
  RStreamQueue queue(4);
  for (u64 i = 0; i < 3; ++i) {
    REntry entry;
    entry.seq = 100 + i;
    queue.push(entry);
  }
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.front().seq, 100u);
  queue.pop_front();
  EXPECT_EQ(queue.front().seq, 101u);
}

TEST(RStreamQueue, FullAndEmpty) {
  RStreamQueue queue(2);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.full());
  queue.push(REntry{});
  queue.push(REntry{});
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.capacity(), 2u);
  queue.pop_front();
  EXPECT_FALSE(queue.full());
}

TEST(RStreamQueue, StableIdsSurvivePops) {
  RStreamQueue queue(8);
  const u64 id_a = queue.push(REntry{});
  const u64 id_b = queue.push(REntry{});
  const u64 id_c = queue.push(REntry{});
  EXPECT_LT(id_a, id_b);
  queue.by_id(id_b).r_result = 42;
  queue.pop_front();  // remove a
  EXPECT_EQ(queue.by_id(id_b).r_result, 42u);
  EXPECT_EQ(queue.by_id(id_c).r_result, 0u);
}

TEST(RStreamQueue, IndexAccessIsProgramOrder) {
  RStreamQueue queue(8);
  for (u64 i = 0; i < 5; ++i) {
    REntry entry;
    entry.seq = i;
    queue.push(entry);
  }
  queue.pop_front();
  for (usize i = 0; i < queue.size(); ++i) {
    EXPECT_EQ(queue.at(i).seq, i + 1);
  }
}

// --- SpecOverlay -------------------------------------------------------------

TEST(SpecOverlay, ReadsThroughToBacking) {
  mem::MainMemory memory;
  memory.store(0x1000, 8, 0xABCD);
  SpecOverlay overlay(&memory);
  EXPECT_EQ(overlay.load(0x1000, 8), 0xABCDu);
}

TEST(SpecOverlay, WritesStayInOverlay) {
  mem::MainMemory memory;
  memory.store(0x1000, 8, 1);
  SpecOverlay overlay(&memory);
  overlay.store(0x1000, 8, 999);
  EXPECT_EQ(overlay.load(0x1000, 8), 999u);
  EXPECT_EQ(memory.load(0x1000, 8), 1u) << "backing must stay clean";
}

TEST(SpecOverlay, PartialOverlapMerges) {
  mem::MainMemory memory;
  memory.store(0x1000, 8, 0x1111111111111111ULL);
  SpecOverlay overlay(&memory);
  overlay.store(0x1002, 2, 0xABCD);  // overwrite bytes 2..3 only
  EXPECT_EQ(overlay.load(0x1000, 8), 0x11111111ABCD1111ULL);
}

TEST(SpecOverlay, ClearDiscardsEverything) {
  mem::MainMemory memory;
  SpecOverlay overlay(&memory);
  overlay.store(0x2000, 8, 7);
  EXPECT_EQ(overlay.dirty_bytes(), 8u);
  overlay.clear();
  EXPECT_EQ(overlay.dirty_bytes(), 0u);
  EXPECT_EQ(overlay.load(0x2000, 8), 0u);
}

TEST(SpecOverlay, ByteGranularity) {
  mem::MainMemory memory;
  SpecOverlay overlay(&memory);
  overlay.store(0x3000, 1, 0xAA);
  overlay.store(0x3007, 1, 0xBB);
  EXPECT_EQ(overlay.load(0x3000, 8), 0xBB000000000000AAULL);
}

}  // namespace
}  // namespace reese::core

// Memory-system tests: sparse main memory, set-associative cache timing
// model (replacement, write policies, eviction/writeback accounting), TLB
// and the full hierarchy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/main_memory.h"
#include "mem/tlb.h"

namespace reese::mem {
namespace {

// --- MainMemory ----------------------------------------------------------------

TEST(MainMemory, ZeroInitialized) {
  MainMemory memory;
  EXPECT_EQ(memory.load(0x1234, 8), 0u);
  EXPECT_EQ(memory.load_u8(~u64{0}), 0u);
}

TEST(MainMemory, StoreLoadRoundTrip) {
  MainMemory memory;
  memory.store(0x1000, 8, 0x1122334455667788ULL);
  EXPECT_EQ(memory.load(0x1000, 8), 0x1122334455667788ULL);
  EXPECT_EQ(memory.load(0x1000, 4), 0x55667788u);
  EXPECT_EQ(memory.load(0x1004, 4), 0x11223344u);
  EXPECT_EQ(memory.load_u8(0x1007), 0x11u);
}

TEST(MainMemory, LittleEndian) {
  MainMemory memory;
  memory.store(0x2000, 2, 0xBEEF);
  EXPECT_EQ(memory.load_u8(0x2000), 0xEFu);
  EXPECT_EQ(memory.load_u8(0x2001), 0xBEu);
}

TEST(MainMemory, CrossPageAccess) {
  MainMemory memory;
  const Addr boundary = MainMemory::kPageSize - 4;
  memory.store(boundary, 8, 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(memory.load(boundary, 8), 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(memory.allocated_pages(), 2u);
}

TEST(MainMemory, WriteBlock) {
  MainMemory memory;
  std::vector<u8> data(10000);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  memory.write_block(0x3000, data.data(), data.size());
  for (usize i = 0; i < data.size(); i += 997) {
    EXPECT_EQ(memory.load_u8(0x3000 + i), static_cast<u8>(i * 7));
  }
}

TEST(MainMemory, ContentHashIgnoresZeroPages) {
  MainMemory a;
  MainMemory b;
  a.store(0x1000, 8, 42);
  b.store(0x1000, 8, 42);
  b.store(0x900000, 8, 0);  // touched-but-zero page
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.store(0x900000, 8, 1);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(MainMemory, DeepCopy) {
  MainMemory a;
  a.store(0x1000, 8, 7);
  MainMemory b = a;
  b.store(0x1000, 8, 9);
  EXPECT_EQ(a.load(0x1000, 8), 7u);
  EXPECT_EQ(b.load(0x1000, 8), 9u);
}

// --- Cache ---------------------------------------------------------------------

CacheConfig small_cache() {
  CacheConfig config;
  config.name = "test";
  config.size_bytes = 1024;   // 16 sets x 2 ways x 32B
  config.line_bytes = 32;
  config.associativity = 2;
  config.hit_latency = 2;
  return config;
}

TEST(Cache, ColdMissThenHit) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  const u32 miss_latency = cache.access(0x1000, false);
  EXPECT_EQ(miss_latency, 62u);  // hit latency + dram
  const u32 hit_latency = cache.access(0x1000, false);
  EXPECT_EQ(hit_latency, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x1000, false);
  EXPECT_EQ(cache.access(0x101F, false), 2u);  // same 32B line
  EXPECT_EQ(cache.access(0x1020, false), 62u);  // next line
}

TEST(Cache, AssociativityHoldsConflicts) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  // Two addresses mapping to the same set (stride = 16 sets * 32B = 512).
  cache.access(0x0, false);
  cache.access(0x200, false);
  EXPECT_EQ(cache.access(0x0, false), 2u);
  EXPECT_EQ(cache.access(0x200, false), 2u);
  EXPECT_TRUE(cache.contains(0x0));
  EXPECT_TRUE(cache.contains(0x200));
}

TEST(Cache, LruEvictsOldest) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x0, false);    // way A
  cache.access(0x200, false);  // way B
  cache.access(0x0, false);    // touch A -> B is LRU
  cache.access(0x400, false);  // evicts B
  EXPECT_TRUE(cache.contains(0x0));
  EXPECT_FALSE(cache.contains(0x200));
  EXPECT_TRUE(cache.contains(0x400));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, FifoIgnoresTouches) {
  CacheConfig config = small_cache();
  config.replacement = ReplacementPolicy::kFifo;
  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);
  cache.access(0x0, false);
  cache.access(0x200, false);
  cache.access(0x0, false);    // touch does not refresh FIFO stamp
  cache.access(0x400, false);  // evicts 0x0 (oldest fill)
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_TRUE(cache.contains(0x200));
}

TEST(Cache, WriteBackDirtyEviction) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x0, true);     // dirty line
  cache.access(0x200, false);
  cache.access(0x400, false);  // evicts one of them; 0x0 is LRU -> writeback
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x0, false);
  cache.access(0x200, false);
  cache.access(0x400, false);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteThroughPropagates) {
  CacheConfig config = small_cache();
  config.write_policy = WritePolicy::kWriteThrough;
  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);
  cache.access(0x0, false);             // fill
  const u64 dram_before = dram.accesses();
  cache.access(0x0, true);              // write hit -> write-through
  EXPECT_EQ(dram.accesses(), dram_before + 1);
}

TEST(Cache, WriteNoAllocatePassesThrough) {
  CacheConfig config = small_cache();
  config.write_allocate = false;
  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);
  cache.access(0x0, true);  // write miss, no allocate
  EXPECT_FALSE(cache.contains(0x0));
}

TEST(Cache, InvalidateAll) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x0, false);
  cache.invalidate_all();
  EXPECT_FALSE(cache.contains(0x0));
}

TEST(Cache, StatsReadWriteSplit) {
  FlatMemoryLevel dram(60);
  Cache cache(small_cache(), &dram);
  cache.access(0x0, false);
  cache.access(0x0, true);
  cache.access(0x0, true);
  EXPECT_EQ(cache.stats().read_accesses, 1u);
  EXPECT_EQ(cache.stats().write_accesses, 2u);
  EXPECT_EQ(cache.stats().accesses, 3u);
}

// Property: for any pow2 geometry, a working set that fits sees only cold
// misses on a second full sweep.
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheGeometryTest, FittingWorkingSetHasOnlyColdMisses) {
  const auto [size_kb, line, assoc] = GetParam();
  CacheConfig config;
  config.size_bytes = static_cast<u64>(size_kb) * 1024;
  config.line_bytes = static_cast<u32>(line);
  config.associativity = static_cast<u32>(assoc);
  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);

  const u64 lines = config.size_bytes / config.line_bytes;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (u64 i = 0; i < lines; ++i) {
      cache.access(i * config.line_bytes, false);
    }
  }
  EXPECT_EQ(cache.stats().misses, lines);  // cold only
  EXPECT_EQ(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(1, 32, 1), std::make_tuple(4, 32, 2),
                      std::make_tuple(8, 64, 4), std::make_tuple(32, 32, 2),
                      std::make_tuple(16, 16, 8), std::make_tuple(2, 64, 2)));

// Property: thrashing working set (2x capacity, same set) always misses
// under LRU.
TEST(Cache, LruThrashingAlwaysMisses) {
  CacheConfig config = small_cache();  // 2-way
  FlatMemoryLevel dram(60);
  Cache cache(config, &dram);
  // Three lines in one set, round robin: LRU pathological case.
  for (int i = 0; i < 30; ++i) {
    cache.access(static_cast<Addr>(i % 3) * 512, false);
  }
  EXPECT_EQ(cache.stats().hits, 0u);
}

// --- TLB ------------------------------------------------------------------------

TEST(Tlb, MissThenHit) {
  Tlb tlb(TlbConfig{});
  EXPECT_EQ(tlb.access(0x1000), 30u);
  EXPECT_EQ(tlb.access(0x1FFF), 0u);  // same page
  EXPECT_EQ(tlb.access(0x2000), 30u);  // next page
  EXPECT_EQ(tlb.stats().misses, 2u);
  EXPECT_EQ(tlb.stats().accesses, 3u);
}

TEST(Tlb, CapacityEviction) {
  TlbConfig config;
  config.entries = 4;
  config.associativity = 4;  // one set
  Tlb tlb(config);
  for (Addr p = 0; p < 5; ++p) tlb.access(p << 12);
  // Page 0 was LRU; it must miss again.
  EXPECT_EQ(tlb.access(0), 30u);
}

// --- Hierarchy --------------------------------------------------------------------

TEST(Hierarchy, L1MissGoesToL2) {
  HierarchyConfig config;
  config.enable_tlbs = false;
  Hierarchy hierarchy(config);
  const u32 cold = hierarchy.data_access(0x100000, false);
  // dl1 hit(2) + ul2 hit(12) + dram(60)
  EXPECT_EQ(cold, 2u + 12u + 60u);
  EXPECT_EQ(hierarchy.data_access(0x100000, false), 2u);
  EXPECT_EQ(hierarchy.ul2().stats().misses, 1u);
}

TEST(Hierarchy, L2SharedBetweenInstAndData) {
  HierarchyConfig config;
  config.enable_tlbs = false;
  Hierarchy hierarchy(config);
  hierarchy.inst_access(0x5000);
  EXPECT_EQ(hierarchy.ul2().stats().accesses, 1u);
  hierarchy.data_access(0x5000, false);  // same line, already in L2
  EXPECT_EQ(hierarchy.ul2().stats().accesses, 2u);
  EXPECT_EQ(hierarchy.ul2().stats().hits, 1u);
}

TEST(Hierarchy, TlbChargesAdditively) {
  HierarchyConfig config;
  Hierarchy hierarchy(config);
  const u32 first = hierarchy.data_access(0x100000, false);
  EXPECT_EQ(first, 2u + 12u + 60u + config.dtlb.miss_latency);
}

TEST(Hierarchy, ReportMentionsAllLevels) {
  Hierarchy hierarchy(HierarchyConfig{});
  const std::string report = hierarchy.report();
  EXPECT_NE(report.find("il1"), std::string::npos);
  EXPECT_NE(report.find("dl1"), std::string::npos);
  EXPECT_NE(report.find("ul2"), std::string::npos);
  EXPECT_NE(report.find("dram"), std::string::npos);
}

}  // namespace
}  // namespace reese::mem

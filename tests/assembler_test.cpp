// Assembler tests: syntax, directives, pseudo-instruction expansion
// (including the li constant-materialization property test), label
// resolution and error reporting.
#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/encoding.h"
#include "isa/iss.h"

namespace reese::isa {
namespace {

Program ok(const std::string& source) {
  auto result = assemble(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? std::move(result).value() : Program{};
}

std::string err(const std::string& source) {
  auto result = assemble(source);
  EXPECT_FALSE(result.ok()) << "expected assembly failure";
  return result.ok() ? "" : result.error().to_string();
}

TEST(Assembler, EmptyProgram) {
  const Program p = ok("");
  EXPECT_TRUE(p.code.empty());
  EXPECT_EQ(p.entry, kDefaultCodeBase);
}

TEST(Assembler, SingleInstruction) {
  const Program p = ok("add t0, t1, t2\n");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, Opcode::kAdd);
  EXPECT_EQ(p.code[0].rd, 5);
  EXPECT_EQ(p.words.size(), 1u);
}

TEST(Assembler, CommentsEverywhere) {
  const Program p = ok(R"(
# full line comment
add t0, t1, t2   # trailing
// slashes too
sub t0, t1, t2   ; semicolon
)");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, EntryIsMainIfPresent) {
  const Program p = ok(R"(
helper:
  nop
main:
  halt
)");
  EXPECT_EQ(p.entry, kDefaultCodeBase + 4);
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = ok(R"(
start:
  addi t0, zero, 3
loop:
  addi t0, t0, -1
  bnez t0, loop
  j start
  halt
)");
  // bnez expands to bne with offset -1 instruction.
  const Instruction& bne = p.code[2];
  EXPECT_EQ(bne.op, Opcode::kBne);
  EXPECT_EQ(bne.imm, -1);
  const Instruction& jump = p.code[3];
  EXPECT_EQ(jump.op, Opcode::kJal);
  EXPECT_EQ(jump.imm, -3);
}

TEST(Assembler, ForwardReferences) {
  const Program p = ok(R"(
  beq zero, zero, end
  nop
end:
  halt
)");
  EXPECT_EQ(p.code[0].imm, 2);
}

TEST(Assembler, MultipleLabelsOneAddress) {
  const Program p = ok("a: b: c: halt\n");
  EXPECT_EQ(p.symbol("a"), p.symbol("c"));
}

TEST(Assembler, MemOperands) {
  const Program p = ok(R"(
  ld  t0, 8(sp)
  sd  t0, -16(s0)
  lbu t1, 0(a0)
)");
  EXPECT_EQ(p.code[0].op, Opcode::kLd);
  EXPECT_EQ(p.code[0].imm, 8);
  EXPECT_EQ(p.code[0].rs1, 2);
  EXPECT_EQ(p.code[1].imm, -16);
  EXPECT_EQ(p.code[1].rs2, 5);  // value register t0
}

TEST(Assembler, DataDirectives) {
  const Program p = ok(R"(
  .data
bytes: .byte 1, 2, 255
halfs: .half 0x1234
words: .word -1
dwords: .dword 0x1122334455667788
)");
  ASSERT_GE(p.data.size(), 3u + 2u + 4u + 8u);
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[2], 255);
  EXPECT_EQ(p.data[3], 0x34);  // little-endian half
  EXPECT_EQ(p.data[4], 0x12);
  EXPECT_EQ(p.data[5], 0xFF);  // -1 word
  EXPECT_EQ(p.symbol("halfs"), kDefaultDataBase + 3);
}

TEST(Assembler, DataAlignment) {
  const Program p = ok(R"(
  .data
a: .byte 1
  .align 8
b: .dword 2
)");
  EXPECT_EQ(p.symbol("b") % 8, 0u);
  EXPECT_EQ(p.symbol("b"), kDefaultDataBase + 8);
}

TEST(Assembler, DataSpace) {
  const Program p = ok(R"(
  .data
buf: .space 100
after: .byte 9
)");
  EXPECT_EQ(p.symbol("after"), p.symbol("buf") + 100);
  EXPECT_EQ(p.data[100], 9);
}

TEST(Assembler, Strings) {
  const Program p = ok(R"(
  .data
s1: .asciiz "hi\n"
s2: .ascii "ab"
)");
  EXPECT_EQ(p.data[0], 'h');
  EXPECT_EQ(p.data[1], 'i');
  EXPECT_EQ(p.data[2], '\n');
  EXPECT_EQ(p.data[3], 0);  // asciiz NUL
  EXPECT_EQ(p.data[4], 'a');
  EXPECT_EQ(p.symbol("s2"), p.symbol("s1") + 4);
}

TEST(Assembler, DataLabelReferences) {
  const Program p = ok(R"(
  .data
a: .dword 7
table: .dword a, a+8, a-8
)");
  const Addr a = p.symbol("a");
  u64 v0 = 0, v1 = 0, v2 = 0;
  for (int i = 0; i < 8; ++i) {
    v0 |= static_cast<u64>(p.data[8 + i]) << (8 * i);
    v1 |= static_cast<u64>(p.data[16 + i]) << (8 * i);
    v2 |= static_cast<u64>(p.data[24 + i]) << (8 * i);
  }
  EXPECT_EQ(v0, a);
  EXPECT_EQ(v1, a + 8);
  EXPECT_EQ(v2, a - 8);
}

TEST(Assembler, LaLoadsAddress) {
  const Program p = ok(R"(
main:
  la t0, target
  halt
  .data
  .space 12345
target: .byte 1
)");
  // Execute and check t0.
  Iss iss(p);
  iss.run(10);
  EXPECT_EQ(iss.state().x(5), p.symbol("target"));
}

TEST(Assembler, PseudoOps) {
  const Program p = ok(R"(
  mv   t0, t1
  not  t0, t1
  neg  t0, t1
  seqz t0, t1
  snez t0, t1
  subi t0, t1, 5
  jr   t0
  ret
  nop
)");
  EXPECT_EQ(p.code[0].op, Opcode::kAddi);
  EXPECT_EQ(p.code[1].op, Opcode::kXori);
  EXPECT_EQ(p.code[1].imm, -1);
  EXPECT_EQ(p.code[2].op, Opcode::kSub);
  EXPECT_EQ(p.code[3].op, Opcode::kSltiu);
  EXPECT_EQ(p.code[4].op, Opcode::kSltu);
  EXPECT_EQ(p.code[5].op, Opcode::kAddi);
  EXPECT_EQ(p.code[5].imm, -5);
  EXPECT_EQ(p.code[6].op, Opcode::kJalr);
  EXPECT_EQ(p.code[7].op, Opcode::kJalr);
  EXPECT_EQ(p.code[7].rs1, kRaReg);
  EXPECT_EQ(p.code[8].op, Opcode::kNop);
}

TEST(Assembler, BranchPseudoSwaps) {
  const Program p = ok(R"(
x:
  ble  t0, t1, x
  bgt  t0, t1, x
  bleu t0, t1, x
  bgtu t0, t1, x
  blez t0, x
  bgtz t0, x
)");
  EXPECT_EQ(p.code[0].op, Opcode::kBge);   // t1 >= t0
  EXPECT_EQ(p.code[0].rs1, 6);
  EXPECT_EQ(p.code[0].rs2, 5);
  EXPECT_EQ(p.code[1].op, Opcode::kBlt);
  EXPECT_EQ(p.code[2].op, Opcode::kBgeu);
  EXPECT_EQ(p.code[3].op, Opcode::kBltu);
  EXPECT_EQ(p.code[4].op, Opcode::kBge);   // zero >= t0
  EXPECT_EQ(p.code[4].rs1, 0);
  EXPECT_EQ(p.code[5].op, Opcode::kBlt);
}

// Property: `li rd, V` then OUT must reproduce V for arbitrary 64-bit V.
TEST(Assembler, PropertyLiMaterializesAnyConstant) {
  SplitMix64 rng(0x11CAFE);
  std::vector<i64> values = {0,       1,      -1,     8191,   -8192,
                             8192,    -8193,  1 << 20, INT64_MAX,
                             INT64_MIN, 0x7FFFFFFF, -0x80000000LL};
  for (int i = 0; i < 200; ++i) values.push_back(static_cast<i64>(rng.next()));

  for (i64 value : values) {
    const std::string source =
        "main:\n  li t0, " + std::to_string(value) + "\n  out t0\n  halt\n";
    auto assembled = assemble(source);
    ASSERT_TRUE(assembled.ok()) << value;
    Iss iss(assembled.value());
    const IssResult result = iss.run(50);
    ASSERT_TRUE(result.halted) << value;
    EXPECT_EQ(iss.state().x(5), static_cast<u64>(value)) << "li " << value;
  }
}

TEST(Assembler, ErrorDuplicateLabel) {
  const std::string message = err("a: nop\na: nop\n");
  EXPECT_NE(message.find("duplicate"), std::string::npos);
}

TEST(Assembler, ErrorUnknownMnemonic) {
  EXPECT_NE(err("frobnicate t0\n").find("unknown mnemonic"),
            std::string::npos);
}

TEST(Assembler, ErrorUnknownSymbol) {
  EXPECT_NE(err("j nowhere\n").find("unknown symbol"), std::string::npos);
}

TEST(Assembler, ErrorBadRegister) {
  EXPECT_NE(err("add q1, t0, t1\n").find("bad register"), std::string::npos);
}

TEST(Assembler, ErrorImmediateRange) {
  EXPECT_FALSE(assemble("addi t0, t0, 100000\n").ok());
}

TEST(Assembler, ErrorReportsLineNumber) {
  const std::string message = err("nop\nnop\nbogus t0\n");
  EXPECT_NE(message.find("line 3"), std::string::npos);
}

TEST(Assembler, ErrorInstructionInData) {
  EXPECT_FALSE(assemble(".data\nadd t0, t1, t2\n").ok());
}

TEST(Assembler, ErrorDirectiveInText) {
  EXPECT_FALSE(assemble(".byte 1\n").ok());
}

TEST(Assembler, ErrorBadAlign) {
  EXPECT_FALSE(assemble(".data\n.align 3\n").ok());
}

TEST(Assembler, ErrorBadString) {
  EXPECT_FALSE(assemble(".data\n.asciiz \"unterminated\n").ok());
}

TEST(Assembler, CustomBases) {
  AsmOptions options;
  options.code_base = 0x4000;
  options.data_base = 0x200000;
  auto result = assemble("main: halt\n.data\nx: .byte 1\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entry, 0x4000u);
  EXPECT_EQ(result.value().symbol("x"), 0x200000u);
}

TEST(Assembler, WordsMatchDecodedCode) {
  const Program p = ok("add t0, t1, t2\nld a0, 4(sp)\nhalt\n");
  ASSERT_EQ(p.words.size(), p.code.size());
  for (usize i = 0; i < p.words.size(); ++i) {
    auto decoded = decode(p.words[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), p.code[i]);
  }
}

}  // namespace
}  // namespace reese::isa

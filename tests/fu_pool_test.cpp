// Functional-unit pool tests: arbitration, pipelined vs unpipelined issue,
// utilization accounting, and the op-timing table.
#include <gtest/gtest.h>

#include "core/fu_pool.h"

namespace reese::core {
namespace {

TEST(FuPool, CountsMatchConfig) {
  const CoreConfig config = starting_config();
  FuPool pool(config);
  EXPECT_EQ(pool.unit_count(FuKind::kIntAlu), 4u);
  EXPECT_EQ(pool.unit_count(FuKind::kIntMult), 1u);
  EXPECT_EQ(pool.unit_count(FuKind::kFpAlu), 4u);
  EXPECT_EQ(pool.unit_count(FuKind::kFpMult), 1u);
  EXPECT_EQ(pool.unit_count(FuKind::kMemPort), 2u);
}

TEST(FuPool, ExhaustsUnitsWithinCycle) {
  FuPool pool(starting_config());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.try_acquire(FuKind::kIntAlu, 10, 1));
  }
  EXPECT_FALSE(pool.try_acquire(FuKind::kIntAlu, 10, 1));
  // Next cycle they are free again (pipelined, issue latency 1).
  EXPECT_TRUE(pool.try_acquire(FuKind::kIntAlu, 11, 1));
}

TEST(FuPool, UnpipelinedBlocksForIssueLatency) {
  FuPool pool(starting_config());
  EXPECT_TRUE(pool.try_acquire(FuKind::kIntMult, 0, 20));
  for (Cycle c = 1; c < 20; ++c) {
    EXPECT_FALSE(pool.try_acquire(FuKind::kIntMult, c, 1)) << c;
  }
  EXPECT_TRUE(pool.try_acquire(FuKind::kIntMult, 20, 1));
}

TEST(FuPool, CanAcquireHasNoSideEffects) {
  FuPool pool(starting_config());
  EXPECT_TRUE(pool.can_acquire(FuKind::kIntMult, 0));
  EXPECT_TRUE(pool.can_acquire(FuKind::kIntMult, 0));
  EXPECT_EQ(pool.ops_issued(FuKind::kIntMult), 0u);
  pool.try_acquire(FuKind::kIntMult, 0, 5);
  EXPECT_FALSE(pool.can_acquire(FuKind::kIntMult, 2));
}

TEST(FuPool, UtilizationMath) {
  FuPool pool(starting_config());
  // 8 ALU ops over 4 cycles on 4 units: 8 / (4*4) = 50%.
  for (Cycle c = 0; c < 4; ++c) {
    pool.try_acquire(FuKind::kIntAlu, c, 1);
    pool.try_acquire(FuKind::kIntAlu, c, 1);
  }
  EXPECT_DOUBLE_EQ(pool.utilization(FuKind::kIntAlu, 4), 0.5);
  EXPECT_DOUBLE_EQ(pool.utilization(FuKind::kIntAlu, 0), 0.0);
}

TEST(OpTiming, TableValues) {
  const CoreConfig config = starting_config();
  EXPECT_EQ(op_timing(isa::ExecClass::kIntAlu, config).result_latency, 1u);
  EXPECT_EQ(op_timing(isa::ExecClass::kIntMul, config).result_latency, 3u);
  EXPECT_EQ(op_timing(isa::ExecClass::kIntMul, config).issue_latency, 1u);
  EXPECT_EQ(op_timing(isa::ExecClass::kIntDiv, config).result_latency, 20u);
  EXPECT_EQ(op_timing(isa::ExecClass::kIntDiv, config).issue_latency, 20u);
  EXPECT_EQ(op_timing(isa::ExecClass::kFpAdd, config).fu, FuKind::kFpAlu);
  EXPECT_EQ(op_timing(isa::ExecClass::kFpSqrt, config).result_latency, 24u);
  EXPECT_EQ(op_timing(isa::ExecClass::kLoad, config).fu, FuKind::kMemPort);
}

TEST(OpTiming, RespectsConfigOverrides) {
  CoreConfig config = starting_config();
  config.int_mul_latency = 7;
  EXPECT_EQ(op_timing(isa::ExecClass::kIntMul, config).result_latency, 7u);
}

TEST(FuPool, KindNames) {
  EXPECT_STREQ(fu_kind_name(FuKind::kIntAlu), "int-alu");
  EXPECT_STREQ(fu_kind_name(FuKind::kMemPort), "mem-port");
}

}  // namespace
}  // namespace reese::core

// Tests for the src/analysis subsystem: CFG construction, the dataflow
// engine's fixed points as observed through the passes, the six lint
// passes (one tripping and one clean program each), diagnostics plumbing
// and the pass registry.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/passes.h"
#include "common/diag.h"
#include "isa/assembler.h"

namespace reese::analysis {
namespace {

isa::Program assemble_or_die(std::string_view source) {
  auto assembled = isa::assemble(source);
  EXPECT_TRUE(assembled.ok())
      << (assembled.ok() ? "" : assembled.error().to_string());
  return std::move(assembled).value();
}

std::vector<Diagnostic> run_pass(std::string_view pass,
                                 std::string_view source) {
  LintOptions options;
  options.passes = {std::string(pass)};
  return run_lint(assemble_or_die(source), options);
}

usize count_pass(const std::vector<Diagnostic>& diags, std::string_view pass) {
  return static_cast<usize>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.pass == pass; }));
}

// A lint-clean program: defined registers, exiting loop, no dead stores.
constexpr std::string_view kCleanProgram = R"(
  .text
main:
  li   t0, 4
  li   t1, 0
loop:
  add  t1, t1, t0
  addi t0, t0, -1
  bnez t0, loop
  out  t1
  halt
)";

// --- instruction metadata ---------------------------------------------------

TEST(InstructionMeta, DefUseSets) {
  // add t1, t0, t2: reads x5/x7, writes x6 (ABI: t0=x5 t1=x6 t2=x7).
  isa::Instruction add{isa::Opcode::kAdd, 6, 5, 7, 0};
  const isa::DefUse du = isa::def_use(add);
  ASSERT_EQ(du.use_count, 2);
  ASSERT_EQ(du.def_count, 1);
  EXPECT_EQ(du.uses[0], (isa::RegRef{5, false}));
  EXPECT_EQ(du.uses[1], (isa::RegRef{7, false}));
  EXPECT_EQ(du.defs[0], (isa::RegRef{6, false}));

  // sd rs2, imm(rs1): two uses, no defs.
  isa::Instruction sd{isa::Opcode::kSd, 0, 2, 8, 16};
  const isa::DefUse sd_du = isa::def_use(sd);
  EXPECT_EQ(sd_du.use_count, 2);
  EXPECT_EQ(sd_du.def_count, 0);

  // fadd fa0, fa1, fa2: FP operands land in the FP half of the flat space.
  isa::Instruction fadd{isa::Opcode::kFadd, 10, 11, 12, 0};
  const isa::DefUse fp_du = isa::def_use(fadd);
  ASSERT_EQ(fp_du.def_count, 1);
  EXPECT_TRUE(fp_du.defs[0].fp);
  EXPECT_EQ(fp_du.defs[0].flat(), isa::kIntRegCount + 10);
  EXPECT_EQ(isa::flat_reg_name(fp_du.defs[0].flat()), "fa0");
}

TEST(InstructionMeta, StaticTargetAndFallThrough) {
  isa::Instruction beq{isa::Opcode::kBeq, 0, 5, 6, -2};
  EXPECT_EQ(isa::static_target(beq, 0x1010), Addr{0x1008});
  isa::Instruction jal{isa::Opcode::kJal, 1, 0, 0, 4};
  EXPECT_EQ(isa::static_target(jal, 0x1000), Addr{0x1010});
  isa::Instruction jalr{isa::Opcode::kJalr, 0, 1, 0, 0};
  EXPECT_FALSE(isa::static_target(jalr, 0x1000).has_value());
  EXPECT_FALSE(isa::static_target(isa::Instruction{}, 0x1000).has_value());

  EXPECT_TRUE(isa::falls_through(isa::Opcode::kBeq));
  EXPECT_TRUE(isa::falls_through(isa::Opcode::kAdd));
  EXPECT_FALSE(isa::falls_through(isa::Opcode::kJal));
  EXPECT_FALSE(isa::falls_through(isa::Opcode::kJalr));
  EXPECT_FALSE(isa::falls_through(isa::Opcode::kHalt));
}

// --- CFG construction -------------------------------------------------------

TEST(Cfg, DiamondShape) {
  // if (t0) t1 = 1 else t1 = 2; out t1.
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 1
  beqz t0, else_arm
  li   t1, 1
  j    join
else_arm:
  li   t1, 2
join:
  out  t1
  halt
)");
  const Cfg cfg(program);
  ASSERT_EQ(cfg.block_count(), 4u);
  const BasicBlock& entry = cfg.block(cfg.entry_block());
  EXPECT_EQ(entry.succs.size(), 2u);  // then-arm + else-arm
  // Every block reachable; join has two predecessors.
  const std::vector<bool> reach = cfg.reachable();
  EXPECT_TRUE(std::all_of(reach.begin(), reach.end(),
                          [](bool r) { return r; }));
  const u32 join = cfg.block_of(5);  // "out t1"
  EXPECT_EQ(cfg.block(join).preds.size(), 2u);
  // RPO starts at the entry and covers all blocks.
  const std::vector<u32> rpo = cfg.reverse_postorder();
  ASSERT_EQ(rpo.size(), 4u);
  EXPECT_EQ(rpo.front(), cfg.entry_block());
}

TEST(Cfg, CallCreatesReturnEdgeAndRetIsIndirect) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  call helper
  out  a0
  halt
helper:
  li   a0, 7
  ret
)");
  const Cfg cfg(program);
  const BasicBlock& entry = cfg.block(cfg.entry_block());
  EXPECT_TRUE(entry.is_call);
  // Call block flows both into the callee and to the return site, so all
  // blocks (incl. "out a0") are reachable.
  EXPECT_EQ(entry.succs.size(), 2u);
  const std::vector<bool> reach = cfg.reachable();
  EXPECT_TRUE(std::all_of(reach.begin(), reach.end(),
                          [](bool r) { return r; }));
  // The ret block is an indirect-jump exit with no successors.
  const u32 ret_block = cfg.block_of(program.code.size() - 1);
  EXPECT_TRUE(cfg.block(ret_block).has_indirect);
  EXPECT_TRUE(cfg.block(ret_block).succs.empty());
}

TEST(Cfg, PlainJumpHasNoFallThroughEdge) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  j    target
skipped:
  li   t0, 1
target:
  halt
)");
  const Cfg cfg(program);
  const BasicBlock& entry = cfg.block(cfg.entry_block());
  EXPECT_FALSE(entry.is_call);
  ASSERT_EQ(entry.succs.size(), 1u);
  EXPECT_EQ(cfg.block(entry.succs[0]).first, 2u);  // "halt", not "li"
  EXPECT_FALSE(cfg.reachable()[cfg.block_of(1)]);
}

// --- pass: use-before-def ---------------------------------------------------

TEST(UseBeforeDef, FlagsUndefinedIntAndFpReads) {
  const auto diags = run_pass("use-before-def", R"(
  .text
main:
  add  t1, t0, t2
  fadd fa0, fa1, fa2
  out  t1
  halt
)");
  ASSERT_EQ(diags.size(), 4u);  // t0, t2, fa1, fa2
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.pass, "use-before-def");
  }
}

TEST(UseBeforeDef, PathSensitivity) {
  // t1 is defined on only one path into the join: must-analysis flags it.
  const auto diags = run_pass("use-before-def", R"(
  .text
main:
  li   t0, 1
  beqz t0, join
  li   t1, 5
join:
  out  t1
  halt
)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("t1"), std::string::npos);
}

TEST(UseBeforeDef, CleanProgramAndEntryConventions) {
  EXPECT_TRUE(run_pass("use-before-def", kCleanProgram).empty());
  // x0 and sp are defined at entry (hardwired / set up by the loader).
  EXPECT_TRUE(run_pass("use-before-def", R"(
  .text
main:
  add  t0, zero, sp
  out  t0
  halt
)").empty());
}

// --- pass: unreachable ------------------------------------------------------

TEST(Unreachable, FlagsCodeAfterHalt) {
  const auto diags = run_pass("unreachable", R"(
  .text
main:
  out  zero
  halt
orphan:
  li   t0, 1
  halt
)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].pc, Addr{0x1008});
}

TEST(Unreachable, CleanProgram) {
  EXPECT_TRUE(run_pass("unreachable", kCleanProgram).empty());
}

// --- pass: branch-target ----------------------------------------------------

TEST(BranchTarget, FlagsWildTargetAndFallOffEnd) {
  // Absolute branch target 0x0 is below the text base; the program also
  // runs off the end (no HALT).
  const auto diags = run_pass("branch-target", R"(
  .text
main:
  li   t0, 1
  beq  t0, t0, 0x0
  li   t1, 2
)");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("outside the text segment"),
            std::string::npos);
  EXPECT_NE(diags[1].message.find("falls off the end"), std::string::npos);
}

TEST(BranchTarget, FlagsBadEntryPoint) {
  isa::Program program = assemble_or_die(kCleanProgram);
  program.entry = program.end_pc() + 0x100;
  LintOptions options;
  options.passes = {"branch-target"};
  const auto diags = run_lint(program, options);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.back().severity, Severity::kError);
  EXPECT_NE(diags.back().message.find("entry point"), std::string::npos);
}

TEST(BranchTarget, CleanProgram) {
  EXPECT_TRUE(run_pass("branch-target", kCleanProgram).empty());
}

// --- pass: static-mem -------------------------------------------------------

TEST(StaticMem, FlagsMisalignedAndWildConstantAddresses) {
  const auto diags = run_pass("static-mem", R"(
  .text
main:
  li   t0, 0x100001
  ld   t1, 0(t0)
  sd   t1, -4096(zero)
  out  t1
  halt
)");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("misaligned"), std::string::npos);
  EXPECT_EQ(diags[1].severity, Severity::kError);
  EXPECT_NE(diags[1].message.find("below the program image"),
            std::string::npos);
}

TEST(StaticMem, FlagsTextSegmentAccess) {
  const auto diags = run_pass("static-mem", R"(
  .text
main:
  li   t0, 0x1000
  ld   t1, 0(t0)
  out  t1
  halt
)");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("text segment"), std::string::npos);
}

TEST(StaticMem, CleanDataAccessAndUnknownAddressesStaySilent) {
  // `la`-based access to the data segment is constant and legal; an
  // address that changes across a loop merges to non-constant and is
  // never reported.
  EXPECT_TRUE(run_pass("static-mem", R"(
  .text
main:
  la   s0, table
  li   t0, 4
loop:
  ld   t1, 0(s0)
  out  t1
  addi s0, s0, 8
  addi t0, t0, -1
  bnez t0, loop
  halt
  .data
  .align 8
table: .dword 1, 2, 3, 4
)").empty());
}

// --- pass: dead-store -------------------------------------------------------

TEST(DeadStore, FlagsOverwrittenAndNeverReadDefs) {
  const auto diags = run_pass("dead-store", R"(
  .text
main:
  li   t0, 1
  li   t0, 2
  li   t1, 9
  out  t0
  halt
)");
  // t0's first write is overwritten; t1 is never read before HALT.
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].pc, Addr{0x1000});
  EXPECT_NE(diags[0].message.find("t0"), std::string::npos);
  EXPECT_NE(diags[1].message.find("t1"), std::string::npos);
}

TEST(DeadStore, RetKeepsEverythingLiveAndJumpLinkDiscardIsFine) {
  // Values computed before `ret` may be read by the unknown caller —
  // never dead. `j` (jal x0) deliberately discards its link register.
  EXPECT_TRUE(run_pass("dead-store", R"(
  .text
main:
  call helper
  out  a0
  halt
helper:
  li   a0, 3
  li   a1, 4
  ret
)").empty());
  EXPECT_TRUE(run_pass("dead-store", kCleanProgram).empty());
}

TEST(DeadStore, ValuesEscapingThroughIndirectCallAreNotDead) {
  // An indirect call (jalr with a live link register) reaches a callee the
  // CFG cannot see — only the fall-through edge exists — so values set up
  // before it (the a0 argument here) may be read by the callee and must
  // not be flagged. This used to warn: the all-live boundary only applied
  // to blocks *ending* in an indirect jump, and a call block falls
  // through instead.
  EXPECT_TRUE(run_pass("dead-store", R"(
  .text
main:
  li   t0, 4116
  li   a0, 7
  jalr ra, t0
  out  a1
  halt
helper:
  add  a1, a0, a0
  ret
)").empty());
}

// --- pass: no-exit-loop -----------------------------------------------------

TEST(NoExitLoop, FlagsSelfLoopAndMultiBlockCycle) {
  const auto self_loop = run_pass("no-exit-loop", R"(
  .text
main:
  j    main
)");
  ASSERT_EQ(self_loop.size(), 1u);
  EXPECT_EQ(self_loop[0].severity, Severity::kWarning);

  const auto two_blocks = run_pass("no-exit-loop", R"(
  .text
main:
  addi t0, t0, 1
  j    other
other:
  addi t0, t0, -1
  j    main
)");
  ASSERT_EQ(two_blocks.size(), 1u);
  EXPECT_NE(two_blocks[0].message.find("2 basic block"), std::string::npos);
}

TEST(NoExitLoop, LoopWithExitOrHaltIsClean) {
  EXPECT_TRUE(run_pass("no-exit-loop", kCleanProgram).empty());
  // A forever-loop containing HALT can leave: not flagged.
  EXPECT_TRUE(run_pass("no-exit-loop", R"(
  .text
main:
  li   t0, 1
  beqz t0, main
  halt
)").empty());
}

// --- registry / driver ------------------------------------------------------

TEST(Registry, HasAllSixPassesAndLookupWorks) {
  ASSERT_EQ(all_passes().size(), 6u);
  for (const PassInfo& pass : all_passes()) {
    EXPECT_EQ(find_pass(pass.name), &pass);
    EXPECT_FALSE(pass.description.empty());
  }
  EXPECT_EQ(find_pass("no-such-pass"), nullptr);
}

TEST(Registry, RunLintSortsByPcAndFiltersSeverity) {
  const isa::Program program = assemble_or_die(R"(
  .text
main:
  li   t0, 1
  beq  t0, t0, 0x0
  add  t1, t2, t2
  out  t1
  halt
)");
  const auto diags = run_lint(program);
  ASSERT_GE(diags.size(), 2u);
  EXPECT_TRUE(std::is_sorted(diags.begin(), diags.end(),
                             [](const Diagnostic& a, const Diagnostic& b) {
                               return a.pc < b.pc;
                             }));
  LintOptions errors_only;
  errors_only.min_severity = Severity::kError;
  for (const Diagnostic& d : run_lint(program, errors_only)) {
    EXPECT_EQ(d.severity, Severity::kError);
  }
}

TEST(Registry, PassSelectionRunsOnlyNamedPasses) {
  LintOptions options;
  options.passes = {"dead-store"};
  const auto diags = run_lint(assemble_or_die(R"(
  .text
main:
  add  t1, t0, t0
  li   t1, 2
  out  t1
  halt
)"), options);
  EXPECT_EQ(count_pass(diags, "use-before-def"), 0u);
  EXPECT_EQ(count_pass(diags, "dead-store"), 1u);
}

// --- diagnostics plumbing ---------------------------------------------------

TEST(Diagnostics, SeverityNamesAndCounts) {
  EXPECT_EQ(severity_name(Severity::kNote), "note");
  EXPECT_EQ(severity_name(Severity::kWarning), "warning");
  EXPECT_EQ(severity_name(Severity::kError), "error");
  const std::vector<Diagnostic> diags = {
      {Severity::kError, 0x1000, "p", "m"},
      {Severity::kWarning, 0x1004, "p", "m"},
      {Severity::kError, 0x1008, "p", "m"},
  };
  EXPECT_EQ(count_severity(diags, Severity::kError), 2u);
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
  EXPECT_EQ(count_severity(diags, Severity::kNote), 0u);
}

TEST(Diagnostics, TextAndJsonRendering) {
  const std::vector<Diagnostic> diags = {
      {Severity::kError, 0x1004, "branch-target", "beq target \"wild\""},
  };
  const std::string text =
      render_diagnostics(diags, DiagFormat::kText, "prog.srv");
  EXPECT_NE(text.find("prog.srv:0x1004: error: [branch-target]"),
            std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);

  const std::string json =
      render_diagnostics(diags, DiagFormat::kJson, "prog.srv");
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"pc\": 4100"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"branch-target\""), std::string::npos);
  // Quotes inside messages are escaped.
  EXPECT_NE(json.find("beq target \\\"wild\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);

  // Empty batch renders a valid empty array and zero counts.
  const std::string empty =
      render_diagnostics({}, DiagFormat::kJson, "clean.srv");
  EXPECT_NE(empty.find("\"diagnostics\": []"), std::string::npos);
  EXPECT_NE(empty.find("\"errors\": 0"), std::string::npos);
}

TEST(Diagnostics, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace reese::analysis

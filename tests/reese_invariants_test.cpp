// REESE invariants and mechanism tests: full duplication accounting,
// queue capacity respect, separation guarantees, partial re-execution,
// early release, priority watermark, spare-element behaviour, and
// deadlock-freedom across pathological configurations.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "workloads/workload.h"

namespace reese {
namespace {

workloads::Workload load(const std::string& name, u64 iterations = 0) {
  workloads::WorkloadOptions options;
  options.iterations = iterations;
  auto made = workloads::make_workload(name, options);
  EXPECT_TRUE(made.ok());
  return std::move(made).value();
}

TEST(ReeseInvariants, EveryCommitIsCompared) {
  const workloads::Workload workload = load("go");
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.run(50'000, 5'000'000);
  const core::CoreStats& stats = pipeline.stats();
  // Mid-run, the R-queue tail holds compared-but-not-yet-committed entries;
  // comparisons can lead commits by at most the queue capacity.
  EXPECT_GE(stats.comparisons, stats.committed);
  EXPECT_LE(stats.comparisons, stats.committed + 32);
  EXPECT_EQ(stats.committed_r, stats.comparisons);
  // Everything that committed passed through the R-queue.
  EXPECT_GE(stats.rqueue_enqueued, stats.committed);
  // In-flight tail may hold a few extra enqueued entries.
  EXPECT_LE(stats.rqueue_enqueued, stats.committed + 64);
  EXPECT_EQ(stats.errors_detected, 0u);
  EXPECT_EQ(stats.rskipped, 0u);
}

TEST(ReeseInvariants, RIssueCountsMatch) {
  const workloads::Workload workload = load("perl");
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.run(30'000, 3'000'000);
  const core::CoreStats& stats = pipeline.stats();
  EXPECT_GE(stats.issued_r, stats.committed_r);
  EXPECT_LE(stats.issued_r, stats.committed_r + 64);
}

TEST(ReeseInvariants, QueueOccupancyNeverExceedsCapacity) {
  for (u32 capacity : {4u, 8u, 32u}) {
    const workloads::Workload workload = load("li");
    core::CoreConfig config = core::with_reese(core::starting_config());
    config.reese.rqueue_size = capacity;
    core::Pipeline pipeline(workload.program, config);
    pipeline.run(20'000, 4'000'000);
    EXPECT_LE(pipeline.stats().rqueue_occupancy.max(),
              static_cast<double>(capacity));
  }
}

TEST(ReeseInvariants, SeparationIsAlwaysPositive) {
  const workloads::Workload workload = load("vortex");
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.run(30'000, 3'000'000);
  // An R execution can never start before its P execution issued; the
  // pipeline depth guarantees at least 2 cycles.
  EXPECT_GE(pipeline.stats().separation.min(), 2u);
}

TEST(ReeseInvariants, MinSeparationEnforced) {
  for (u32 min_sep : {8u, 32u}) {
    const workloads::Workload workload = load("go");
    core::CoreConfig config = core::with_reese(core::starting_config());
    config.reese.min_separation = min_sep;
    core::Pipeline pipeline(workload.program, config);
    pipeline.run(20'000, 8'000'000);
    // Separation is measured issue-to-issue; enforcement is against P
    // completion, which is >= issue, so min separation holds a fortiori.
    EXPECT_GE(pipeline.stats().separation.min(), min_sep);
  }
}

TEST(ReeseInvariants, MinSeparationCostsThroughput) {
  const workloads::Workload fast_workload = load("li");
  core::CoreConfig config = core::with_reese(core::starting_config());
  core::Pipeline fast(fast_workload.program, config);
  fast.run(30'000, 8'000'000);

  const workloads::Workload slow_workload = load("li");
  config.reese.min_separation = 64;
  core::Pipeline slow(slow_workload.program, config);
  slow.run(30'000, 8'000'000);

  EXPECT_LT(slow.stats().ipc(), fast.stats().ipc());
}

TEST(ReeseInvariants, PartialReexecutionAccounting) {
  for (u32 k : {2u, 4u}) {
    const workloads::Workload workload = load("gcc");
    core::CoreConfig config = core::with_reese(core::starting_config());
    config.reese.reexec_interval = k;
    core::Pipeline pipeline(workload.program, config);
    pipeline.run(40'000, 4'000'000);
    const core::CoreStats& stats = pipeline.stats();
    const double skipped_fraction =
        static_cast<double>(stats.rskipped) /
        static_cast<double>(stats.committed);
    EXPECT_NEAR(skipped_fraction, 1.0 - 1.0 / k, 0.02) << "k=" << k;
    EXPECT_EQ(stats.comparisons + stats.rskipped, stats.committed);
  }
}

TEST(ReeseInvariants, PartialReexecutionIsFaster) {
  const workloads::Workload full_workload = load("li");
  core::Pipeline full(full_workload.program,
                      core::with_reese(core::starting_config()));
  full.run(40'000, 4'000'000);

  const workloads::Workload half_workload = load("li");
  core::CoreConfig config = core::with_reese(core::starting_config());
  config.reese.reexec_interval = 2;
  core::Pipeline half(half_workload.program, config);
  half.run(40'000, 4'000'000);

  EXPECT_GT(half.stats().ipc(), full.stats().ipc());
}

TEST(ReeseInvariants, EarlyReleaseOffStillCorrect) {
  const workloads::Workload workload = load("perl", /*iterations=*/6);
  isa::Iss iss(workload.program);
  const isa::IssResult golden = iss.run(2'000'000);
  ASSERT_TRUE(golden.halted);

  core::CoreConfig config = core::with_reese(core::starting_config());
  config.reese.early_release = false;
  core::Pipeline pipeline(workload.program, config);
  ASSERT_EQ(pipeline.run(2'000'000, 64'000'000), core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.stats().comparisons, pipeline.stats().committed);
}

TEST(ReeseInvariants, EarlyReleaseHelpsIpc) {
  const workloads::Workload on_workload = load("vortex");
  core::Pipeline on(on_workload.program,
                    core::with_reese(core::starting_config()));
  on.run(30'000, 4'000'000);

  const workloads::Workload off_workload = load("vortex");
  core::CoreConfig config = core::with_reese(core::starting_config());
  config.reese.early_release = false;
  core::Pipeline off(off_workload.program, config);
  off.run(30'000, 4'000'000);

  EXPECT_GE(on.stats().ipc(), off.stats().ipc());
}

TEST(ReeseInvariants, SpareAlusRecoverIpc) {
  const workloads::Workload w0 = load("li");
  core::Pipeline none(w0.program, core::with_reese(core::starting_config()));
  none.run(40'000, 4'000'000);

  const workloads::Workload w2 = load("li");
  core::Pipeline two(w2.program,
                     core::with_reese(core::starting_config(), 2));
  two.run(40'000, 4'000'000);

  EXPECT_GT(two.stats().ipc(), none.stats().ipc());
}

TEST(ReeseInvariants, ReeseNeverBeatsBaselineByMuch) {
  // REESE executes strictly more work; it may commit slightly earlier than
  // baseline on some interleavings (the paper saw vortex do this) but
  // never by a large factor.
  for (const char* name : {"gcc", "ijpeg", "li"}) {
    const workloads::Workload wb = load(name);
    core::Pipeline baseline(wb.program, core::starting_config());
    baseline.run(30'000, 4'000'000);

    const workloads::Workload wr = load(name);
    core::Pipeline reese(wr.program,
                         core::with_reese(core::starting_config()));
    reese.run(30'000, 4'000'000);

    EXPECT_LT(reese.stats().ipc(), 1.10 * baseline.stats().ipc()) << name;
  }
}

TEST(ReeseInvariants, WatermarkPriorityEngages) {
  const workloads::Workload workload = load("li");
  core::CoreConfig config = core::with_reese(core::starting_config());
  config.reese.rqueue_size = 8;  // small queue -> frequent pressure
  core::Pipeline pipeline(workload.program, config);
  pipeline.run(20'000, 4'000'000);
  EXPECT_GT(pipeline.stats().rpriority_cycles, 0u);
}

TEST(ReeseInvariants, TinyQueueStallsShowUp) {
  const workloads::Workload workload = load("ijpeg");
  core::CoreConfig config = core::with_reese(core::starting_config());
  config.reese.rqueue_size = 2;
  core::Pipeline pipeline(workload.program, config);
  pipeline.run(20'000, 8'000'000);
  EXPECT_GT(pipeline.stats().rqueue_full_stall_cycles, 0u);
}

TEST(ReeseInvariants, HaltDrainsThroughQueue) {
  auto assembled = isa::assemble(R"(
main:
  li t0, 10
loop:
  addi t0, t0, -1
  bnez t0, loop
  out t0
  halt
)");
  ASSERT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();
  core::Pipeline pipeline(program, core::with_reese(core::starting_config()));
  EXPECT_EQ(pipeline.run(1'000'000, 100'000), core::StopReason::kHalted);
  EXPECT_EQ(pipeline.stats().comparisons, pipeline.stats().committed);
}

TEST(ReeseInvariants, WindowSharingAblationChangesTiming) {
  const workloads::Workload w_off = load("li");
  core::CoreConfig off = core::with_reese(core::starting_config());
  off.reese.window_sharing = false;
  core::Pipeline pipeline_off(w_off.program, off);
  pipeline_off.run(30'000, 4'000'000);

  const workloads::Workload w_on = load("li");
  core::CoreConfig on = core::with_reese(core::starting_config());
  on.reese.window_sharing = true;
  core::Pipeline pipeline_on(w_on.program, on);
  pipeline_on.run(30'000, 4'000'000);

  // Sharing the window can only hurt (or equal).
  EXPECT_LE(pipeline_on.stats().ipc(), pipeline_off.stats().ipc() * 1.001);
}

// Deadlock-freedom property: every pathological shape of tiny resources
// must still make forward progress to the commit target.
struct TinyConfig {
  u32 ruu, lsq, rqueue, ports, alus, width;
  bool early, window;
};

class DeadlockFreedomTest : public ::testing::TestWithParam<TinyConfig> {};

TEST_P(DeadlockFreedomTest, MakesProgress) {
  const TinyConfig& tiny = GetParam();
  const workloads::Workload workload = load("li");
  core::CoreConfig config = core::with_reese(core::starting_config());
  config.ruu_size = tiny.ruu;
  config.lsq_size = tiny.lsq;
  config.mem_port_count = tiny.ports;
  config.int_alu_count = tiny.alus;
  config.fetch_width = config.decode_width = tiny.width;
  config.issue_width = config.commit_width = tiny.width;
  config.reese.rqueue_size = tiny.rqueue;
  config.reese.early_release = tiny.early;
  config.reese.window_sharing = tiny.window;
  core::Pipeline pipeline(workload.program, config);
  EXPECT_EQ(pipeline.run(3'000, 3'000'000), core::StopReason::kCommitTarget)
      << "ruu=" << tiny.ruu << " lsq=" << tiny.lsq
      << " rq=" << tiny.rqueue << " ports=" << tiny.ports;
}

INSTANTIATE_TEST_SUITE_P(
    TinyShapes, DeadlockFreedomTest,
    ::testing::Values(TinyConfig{2, 1, 1, 1, 1, 1, true, true},
                      TinyConfig{2, 1, 1, 1, 1, 1, false, true},
                      TinyConfig{2, 1, 1, 1, 1, 1, true, false},
                      TinyConfig{4, 2, 2, 1, 1, 2, false, false},
                      TinyConfig{4, 2, 2, 1, 1, 2, true, true},
                      TinyConfig{3, 1, 4, 1, 2, 4, true, true},
                      TinyConfig{16, 8, 1, 1, 4, 8, true, true},
                      TinyConfig{16, 8, 1, 2, 4, 8, false, true},
                      TinyConfig{2, 2, 32, 2, 4, 8, true, true}));

}  // namespace
}  // namespace reese

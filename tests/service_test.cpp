// End-to-end coverage for the reesed stack (DESIGN.md §11):
//  * SimulationService routing, validation (400), backpressure (429),
//    wall-clock timeouts (408) and stats — driven in-process via handle();
//  * results fetched through the service are byte-identical to a direct
//    run_experiment/run_campaign with the same spec;
//  * every JSON body the service emits round-trips through JsonChecker;
//  * the HTTP layer over a real loopback socket (http::Server + client);
//  * the shipped binaries: reesed on an ephemeral port driven by
//    reese_client (submit → wait → result), then a SIGTERM drain that must
//    exit 0. Binary paths arrive via REESE_REESED_BIN / REESE_CLIENT_BIN.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/http.h"
#include "common/json.h"
#include "common/strutil.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/service.h"
#include "json_checker.h"

namespace reese {
namespace {

using sim::ServiceConfig;
using sim::SimulationService;

http::Request make_request(const std::string& method, const std::string& path,
                           const std::string& body = "") {
  http::Request request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

http::Request result_request(const std::string& id_path,
                             const std::string& fmt = "") {
  http::Request request = make_request("GET", id_path + "/result");
  if (!fmt.empty()) request.query["format"] = fmt;
  return request;
}

/// Submit a spec, expect 202, return "/v1/jobs/<id>".
std::string submit_ok(SimulationService* service, const std::string& endpoint,
                      const std::string& spec) {
  const http::Response response =
      service->handle(make_request("POST", endpoint, spec));
  EXPECT_EQ(response.status, 202) << response.body;
  EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
  const Result<json::Value> parsed = json::parse_json(response.body);
  EXPECT_TRUE(parsed.ok());
  const json::Value* id = parsed.value().find("id");
  EXPECT_NE(id, nullptr);
  return format("/v1/jobs/%llu",
                static_cast<unsigned long long>(id->uint_value));
}

/// Poll a job until it leaves queued/running; returns the final state.
std::string wait_for_job(SimulationService* service,
                         const std::string& id_path) {
  for (int i = 0; i < 2000; ++i) {
    const http::Response response =
        service->handle(make_request("GET", id_path));
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
    const Result<json::Value> parsed = json::parse_json(response.body);
    EXPECT_TRUE(parsed.ok());
    const std::string state = parsed.value().find("state")->string;
    if (state != "queued" && state != "running") return state;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return "poll timeout";
}

TEST(Service, HealthzAndUnknownRoutes) {
  SimulationService service;
  EXPECT_EQ(service.handle(make_request("GET", "/v1/healthz")).status, 200);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/healthz")).status, 405);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/nope")).status, 404);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/99")).status, 404);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/zzz")).status, 404);
  EXPECT_EQ(service.handle(make_request("DELETE", "/v1/jobs/1")).status, 405);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/experiments")).status,
            405);
}

TEST(Service, RejectsInvalidSpecsWith400) {
  SimulationService service;
  const char* bad_specs[] = {
      "not json at all",
      "[1, 2, 3]",                             // not an object
      R"({"workloads": ["no_such_bench"]})",   // unknown workload
      R"({"models": ["pentium"]})",            // unknown model
      R"({"modles": ["reese"]})",              // typo'd key
      R"({"workloads": []})",                  // empty list
      R"({"instructions": 99000000})",         // over the per-cell cap
      R"({"instructions": -5})",               // negative integer
      R"({"jobs": 0})",                        // out-of-range worker count
      R"({"jobs": 1000000})",                  //
      R"({"timeout_s": 1e9})",                 // beyond max_timeout_s
      R"({"extra_seeds": [1, "two"]})",        // non-integer seed
      R"({"seed": 1.5})",                      // non-integer seed
  };
  for (const char* spec : bad_specs) {
    const http::Response response =
        service.handle(make_request("POST", "/v1/experiments", spec));
    EXPECT_EQ(response.status, 400) << spec << " -> " << response.body;
    EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
  }

  const char* bad_campaigns[] = {
      R"({"variants": ["no_such_variant"]})",
      R"({"rate": 0})",
      R"({"rate": 1.5})",
      R"({"replicas": 0})",
      R"({"replicas": 100000})",  // replica bound and cell cap
      R"({"models": ["reese"]})",  // experiment-only key
  };
  for (const char* spec : bad_campaigns) {
    const http::Response response =
        service.handle(make_request("POST", "/v1/campaigns", spec));
    EXPECT_EQ(response.status, 400) << spec << " -> " << response.body;
    EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
  }
}

TEST(Service, ExperimentMatchesDirectRunByteForByte) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);
  const std::string id_path = submit_ok(
      &service, "/v1/experiments",
      R"({"title": "svc", "workloads": ["gcc", "li"],
          "models": ["baseline", "reese"],
          "instructions": 20000, "seed": 42})");
  EXPECT_EQ(wait_for_job(&service, id_path), "done");

  const http::Response csv = service.handle(result_request(id_path, "csv"));
  ASSERT_EQ(csv.status, 200);
  EXPECT_EQ(csv.content_type, "text/csv");
  const http::Response json_body = service.handle(result_request(id_path));
  ASSERT_EQ(json_body.status, 200);
  EXPECT_TRUE(JsonChecker(json_body.body).valid()) << json_body.body;

  // The same spec run directly must serialize identically: the service
  // adds queueing and timeouts around the grid, never inside it.
  sim::ExperimentSpec direct;
  direct.title = "svc";
  direct.base = core::starting_config();
  direct.workloads = {"gcc", "li"};
  direct.models = {sim::Model::kBaseline, sim::Model::kReese};
  direct.instructions = 20000;
  direct.seed = 42;
  direct.jobs = 1;
  const sim::ExperimentResult expected = sim::run_experiment(direct);
  EXPECT_EQ(csv.body, expected.csv());
  EXPECT_EQ(json_body.body, expected.json());
}

TEST(Service, CampaignMatchesDirectRunByteForByte) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);
  const std::string id_path = submit_ok(
      &service, "/v1/campaigns",
      R"({"workloads": ["gcc"], "quick": true, "instructions": 5000})");
  EXPECT_EQ(wait_for_job(&service, id_path), "done");

  const http::Response json_body = service.handle(result_request(id_path));
  ASSERT_EQ(json_body.status, 200);
  EXPECT_TRUE(JsonChecker(json_body.body).valid()) << json_body.body;
  const http::Response csv = service.handle(result_request(id_path, "csv"));
  ASSERT_EQ(csv.status, 200);

  sim::CampaignSpec direct;
  direct.workloads = {"gcc"};
  direct.quick = true;
  direct.instructions = 5000;
  direct.jobs = 1;
  const sim::CampaignResult expected = sim::run_campaign(direct);
  EXPECT_EQ(json_body.body, expected.json());
  EXPECT_EQ(csv.body, expected.csv());

  EXPECT_EQ(service.handle(result_request(id_path, "xml")).status, 400);
}

TEST(Service, TimedOutJobAnswers408) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);
  // timeout_s 0: the deadline has already passed when the job starts, so
  // the cancel hook fires before the first grid cell.
  const std::string id_path = submit_ok(
      &service, "/v1/experiments",
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 20000, "timeout_s": 0})");
  EXPECT_EQ(wait_for_job(&service, id_path), "timeout");
  const http::Response response = service.handle(result_request(id_path));
  EXPECT_EQ(response.status, 408);
  EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
  EXPECT_EQ(service.stats().timeouts, 1u);
}

TEST(Service, FullQueueAnswers429) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  SimulationService service(config);
  // Job A occupies the single worker for a while (one ~3M-instruction
  // cell; the cancel hook is only polled between cells, so it cannot be
  // preempted mid-cell).
  const std::string slow_spec =
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 3000000})";
  const std::string a_path =
      submit_ok(&service, "/v1/experiments", slow_spec);
  // Wait until A holds the worker so the admission math is deterministic.
  for (int i = 0; i < 2000 && service.stats().running == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().running, 1u);

  const std::string quick_spec =
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 1000})";
  // B fills the single waiting slot; C must be refused.
  submit_ok(&service, "/v1/experiments", quick_spec);
  const http::Response refused =
      service.handle(make_request("POST", "/v1/experiments", quick_spec));
  EXPECT_EQ(refused.status, 429) << refused.body;
  EXPECT_TRUE(JsonChecker(refused.body).valid()) << refused.body;
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);

  service.drain();
  EXPECT_EQ(wait_for_job(&service, a_path), "done");
  const sim::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.total_committed, 0u);
  EXPECT_GT(stats.kips(), 0.0);
}

TEST(Service, BearerTokenGatesEverythingButHealthz) {
  ServiceConfig config;
  config.workers = 1;
  config.auth_tokens = {"tenant-a", "tenant-b"};
  SimulationService service(config);

  // Health stays probe-able without credentials; everything else is 401.
  EXPECT_EQ(service.handle(make_request("GET", "/v1/healthz")).status, 200);
  const http::Response denied =
      service.handle(make_request("GET", "/v1/stats"));
  EXPECT_EQ(denied.status, 401) << denied.body;
  EXPECT_TRUE(JsonChecker(denied.body).valid()) << denied.body;

  http::Request wrong = make_request("GET", "/v1/stats");
  wrong.headers["authorization"] = "Bearer nope";
  EXPECT_EQ(service.handle(wrong).status, 401);
  wrong.headers["authorization"] = "Basic dXNlcjpwdw==";  // wrong scheme
  EXPECT_EQ(service.handle(wrong).status, 401);

  http::Request right = make_request("GET", "/v1/stats");
  right.headers["authorization"] = "Bearer tenant-b";
  EXPECT_EQ(service.handle(right).status, 200);
}

TEST(Service, TenantQuotaRejectsTheGreedyTenantOnly) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.auth_tokens = {"greedy", "modest"};
  config.tenant_max_active = 1;
  SimulationService service(config);

  const std::string slow_spec =
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 3000000})";
  http::Request submit = make_request("POST", "/v1/experiments", slow_spec);
  submit.headers["authorization"] = "Bearer greedy";
  EXPECT_EQ(service.handle(submit).status, 202);

  // Same tenant, second active job: over quota.
  const http::Response over = service.handle(submit);
  EXPECT_EQ(over.status, 429) << over.body;
  EXPECT_NE(over.body.find("quota"), std::string::npos) << over.body;
  EXPECT_EQ(service.stats().rejected_quota, 1u);

  // A different tenant is not punished for the greedy one.
  submit.headers["authorization"] = "Bearer modest";
  EXPECT_EQ(service.handle(submit).status, 202);

  service.drain();
  // Finished jobs stop counting against the quota.
  submit.headers["authorization"] = "Bearer greedy";
  const std::string quick_spec =
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 1000})";
  http::Request again = make_request("POST", "/v1/experiments", quick_spec);
  again.headers["authorization"] = "Bearer greedy";
  EXPECT_EQ(service.handle(again).status, 202);
  service.drain();
}

TEST(Service, PruningPrefersFetchedResultsAndAnswers410) {
  ServiceConfig config;
  config.workers = 1;
  config.max_retained_jobs = 2;
  SimulationService service(config);
  const std::string spec =
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 1000})";

  // Three finished jobs; fetch only job 2's result.
  const std::string job1 = submit_ok(&service, "/v1/experiments", spec);
  EXPECT_EQ(wait_for_job(&service, job1), "done");
  const std::string job2 = submit_ok(&service, "/v1/experiments", spec);
  EXPECT_EQ(wait_for_job(&service, job2), "done");
  const std::string job3 = submit_ok(&service, "/v1/experiments", spec);
  EXPECT_EQ(wait_for_job(&service, job3), "done");
  EXPECT_EQ(service.handle(result_request(job2)).status, 200);

  // The next submit prunes down to the retention window. The fetched job
  // (2) must go first — jobs 1 and 3 were never fetched, and the old bug
  // was evicting the oldest id regardless, losing never-delivered results.
  const std::string job4 = submit_ok(&service, "/v1/experiments", spec);
  EXPECT_EQ(wait_for_job(&service, job4), "done");

  const http::Response pruned = service.handle(result_request(job2));
  EXPECT_EQ(pruned.status, 410) << pruned.body;
  EXPECT_TRUE(JsonChecker(pruned.body).valid()) << pruned.body;
  EXPECT_EQ(service.handle(result_request(job1)).status, 200)
      << "never-fetched result was pruned while a fetched one existed";
  EXPECT_EQ(service.handle(result_request(job3)).status, 200);
  // An id the service never issued stays a plain 404.
  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/99/result")).status,
            404);
}

TEST(Service, ResultFormatCellsRoundTripsTheCampaignMatrix) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);
  const std::string id_path = submit_ok(
      &service, "/v1/campaigns",
      R"({"workloads": ["gcc"], "quick": true, "instructions": 5000})");
  EXPECT_EQ(wait_for_job(&service, id_path), "done");

  const http::Response cells =
      service.handle(result_request(id_path, "cells"));
  ASSERT_EQ(cells.status, 200) << cells.body;
  EXPECT_EQ(cells.content_type, "application/octet-stream");

  sim::CampaignSpec direct;
  direct.workloads = {"gcc"};
  direct.quick = true;
  direct.instructions = 5000;
  direct.jobs = 1;
  const sim::CampaignResult expected = sim::run_campaign(direct);
  sim::CampaignWire wire;
  std::string error;
  ASSERT_TRUE(sim::deserialize_campaign_matrix(cells.body, &wire, &error))
      << error;
  EXPECT_TRUE(wire.matrix == expected.matrix);

  // cells is a campaign-only view: an experiment result cannot provide it.
  const std::string exp_path = submit_ok(
      &service, "/v1/experiments",
      R"({"workloads": ["gcc"], "models": ["baseline"],
          "instructions": 1000})");
  EXPECT_EQ(wait_for_job(&service, exp_path), "done");
  EXPECT_EQ(service.handle(result_request(exp_path, "cells")).status, 400);
}

TEST(Service, AcceptsMillionReplicaSpecsThroughTheCampaignRunnerHook) {
  // Coordinator mode: a campaign_runner intercepts campaign jobs (the
  // fleet dispatcher in reesed --coordinator) and the cell cap is raised
  // by the fleet size, so million-replica specs must pass validation and
  // reach the hook instead of the local run_campaign.
  ServiceConfig config;
  config.workers = 1;
  config.max_cells = 4u * 1000 * 1000;
  std::atomic<u32> runner_replicas{0};
  config.campaign_runner = [&](const sim::CampaignSpec& spec,
                               sim::CampaignResult* result, std::string*) {
    runner_replicas = spec.replicas;
    result->spec = sim::resolve_campaign_defaults(spec);
    result->spec.replicas = 0;  // keep the stub matrix legitimately empty
    result->matrix = sim::make_campaign_matrix(result->spec);
    return true;
  };
  SimulationService service(config);
  const std::string id_path = submit_ok(
      &service, "/v1/campaigns",
      R"({"workloads": ["gcc"], "variants": ["baseline"],
          "replicas": 1000000, "instructions": 100})");
  EXPECT_EQ(wait_for_job(&service, id_path), "done");
  EXPECT_EQ(runner_replicas.load(), 1000000u);

  // Beyond the per-spec replica bound stays a 400 regardless of the cap.
  const http::Response absurd = service.handle(make_request(
      "POST", "/v1/campaigns",
      R"({"workloads": ["gcc"], "variants": ["baseline"],
          "replicas": 1000001})"));
  EXPECT_EQ(absurd.status, 400) << absurd.body;

  // A runner that reports failure turns the job into state "failed".
  config.campaign_runner = [](const sim::CampaignSpec&, sim::CampaignResult*,
                              std::string* error) {
    *error = "fleet exploded";
    return false;
  };
  SimulationService failing(config);
  const std::string failed_path = submit_ok(
      &failing, "/v1/campaigns",
      R"({"workloads": ["gcc"], "quick": true, "instructions": 1000})");
  EXPECT_EQ(wait_for_job(&failing, failed_path), "failed");
}

TEST(Service, StatsBodyIsValidJson) {
  SimulationService service;
  const http::Response response =
      service.handle(make_request("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
  const Result<json::Value> parsed = json::parse_json(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().find("queue_depth")->uint_value, 0u);
  EXPECT_NE(parsed.value().find("cumulative_kips"), nullptr);
}

TEST(Service, MetricsEndpointServesPrometheusText) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);

  // Before any job: service-level series exist with zero values.
  http::Response response = service.handle(make_request("GET", "/v1/metrics"));
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(response.body.find("# TYPE reese_service_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("reese_service_submitted_total 0"),
            std::string::npos);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/metrics")).status, 405);

  const std::string id_path = submit_ok(
      &service, "/v1/experiments",
      R"({"workloads": ["li"], "models": ["baseline", "reese"],
          "instructions": 2000})");
  EXPECT_EQ(wait_for_job(&service, id_path), "done");

  response = service.handle(make_request("GET", "/v1/metrics"));
  ASSERT_EQ(response.status, 200);
  const std::string& text = response.body;
  EXPECT_NE(text.find("reese_service_submitted_total 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("reese_service_completed_total 1"), std::string::npos);
  // The grid counters accumulated live while the job ran.
  EXPECT_NE(
      text.find("reese_grid_cells_completed_total{kind=\"experiment\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("reese_grid_committed_instructions_total"),
            std::string::npos);
  // Valid exposition shape: every non-comment line is "name[{labels}] value".
  for (usize start = 0; start < text.size();) {
    usize end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("reese_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Service, ProgressEndpointTracksAJobToCompletion) {
  ServiceConfig config;
  config.workers = 1;
  SimulationService service(config);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/9/progress")).status,
            404);

  const std::string id_path = submit_ok(
      &service, "/v1/experiments",
      R"({"workloads": ["li", "gcc"], "models": ["baseline", "reese"],
          "instructions": 5000})");

  // Poll progress while the job runs: cells_done must never decrease and
  // must land on cells_total when the job is done.
  u64 last_done = 0;
  u64 last_committed = 0;
  bool saw_running = false;
  for (int i = 0; i < 4000; ++i) {
    const http::Response response =
        service.handle(make_request("GET", id_path + "/progress"));
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_TRUE(JsonChecker(response.body).valid()) << response.body;
    const Result<json::Value> parsed = json::parse_json(response.body);
    ASSERT_TRUE(parsed.ok());
    const json::Value& body = parsed.value();
    const u64 done = body.find("cells_done")->uint_value;
    const u64 committed = body.find("committed")->uint_value;
    EXPECT_GE(done, last_done) << "cells_done went backwards";
    EXPECT_GE(committed, last_committed) << "committed went backwards";
    last_done = done;
    last_committed = committed;
    const std::string& state = body.find("state")->string;
    if (state == "running") saw_running = true;
    if (state == "done") {
      EXPECT_EQ(done, body.find("cells_total")->uint_value);
      EXPECT_EQ(done, 4u);
      EXPECT_GT(committed, 0u);
      EXPECT_GT(body.find("elapsed_s")->number, 0.0);
      EXPECT_GT(body.find("kips")->number, 0.0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(last_done, 4u) << "job never reached done";
  // With 4 sub-second cells the poll loop races the worker; seeing the
  // running state at least once keeps this test honest about polling
  // mid-run (200µs polls against ~4 × tens-of-ms cells).
  EXPECT_TRUE(saw_running);
}

TEST(Service, ExportServiceStatsSeries) {
  sim::ServiceStats stats;
  stats.queue_depth = 3;
  stats.running = 2;
  stats.submitted = 10;
  stats.completed = 7;
  stats.timeouts = 1;
  stats.failed = 1;
  stats.rejected_queue_full = 4;
  stats.total_committed = 123456;
  stats.total_wall_seconds = 2.0;

  metrics::Registry registry;
  sim::export_service_stats(&registry, stats);
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("reese_service_submitted_total 10"), std::string::npos);
  EXPECT_NE(text.find("reese_service_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("reese_service_rejected_queue_full_total 4"),
            std::string::npos);
  EXPECT_NE(text.find("reese_service_busy_seconds 2"), std::string::npos);
  // kips = 123456 / 2.0 / 1000 = 61.728
  EXPECT_NE(text.find("reese_service_kips 61.728"), std::string::npos);

  // Re-export mirrors the new snapshot in place.
  stats.submitted = 11;
  sim::export_service_stats(&registry, stats);
  EXPECT_NE(registry.prometheus().find("reese_service_submitted_total 11"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP over a real loopback socket.

TEST(HttpLoopback, ServesServiceEndpoints) {
  SimulationService service;
  http::Server server(
      [&service](const http::Request& request) {
        return service.handle(request);
      });
  ASSERT_TRUE(server.listen("127.0.0.1", 0));
  std::thread serve_thread([&server] { server.serve(); });

  const http::Response health =
      http::request("127.0.0.1", server.port(), "GET", "/v1/healthz");
  EXPECT_EQ(health.status, 200) << health.body;
  EXPECT_TRUE(JsonChecker(health.body).valid());

  const http::Response bad = http::request(
      "127.0.0.1", server.port(), "POST", "/v1/experiments", "{oops");
  EXPECT_EQ(bad.status, 400);

  const http::Response missing =
      http::request("127.0.0.1", server.port(), "GET", "/v1/jobs/123");
  EXPECT_EQ(missing.status, 404);

  server.request_stop();
  // Unblock the accept loop in case ::shutdown alone does not wake it.
  http::request("127.0.0.1", server.port(), "GET", "/v1/healthz");
  serve_thread.join();
}

// ---------------------------------------------------------------------------
// The shipped binaries, end to end.

#if defined(REESE_REESED_BIN) && defined(REESE_CLIENT_BIN)

struct Daemon {
  pid_t pid = -1;
  int port = 0;
  FILE* stdout_stream = nullptr;
};

/// Fork reesed (on an ephemeral port by default; a restart reuses a fixed
/// one); parse the port from its first stdout line
/// ("reesed: listening on 127.0.0.1:PORT").
Daemon start_reesed(int port = 0) {
  Daemon daemon;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) return daemon;
  const std::string port_arg = format("%d", port);
  const pid_t pid = fork();
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl(REESE_REESED_BIN, "reesed", "--port", port_arg.c_str(), "--workers",
          "1", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(out_pipe[1]);
  if (pid < 0) {
    close(out_pipe[0]);
    return daemon;
  }
  daemon.pid = pid;
  daemon.stdout_stream = fdopen(out_pipe[0], "r");
  char line[256] = {};
  if (daemon.stdout_stream != nullptr &&
      fgets(line, sizeof(line), daemon.stdout_stream) != nullptr) {
    const char* colon = std::strrchr(line, ':');
    if (colon != nullptr) daemon.port = std::atoi(colon + 1);
  }
  return daemon;
}

/// Run a reese_client command line; capture stdout and the exit status.
int run_client(int port, const std::string& args, std::string* output) {
  const std::string command = format(
      "%s --port %d %s", REESE_CLIENT_BIN, port, args.c_str());
  FILE* stream = popen(command.c_str(), "r");
  if (stream == nullptr) return -1;
  output->clear();
  char buffer[4096];
  usize n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), stream)) > 0) {
    output->append(buffer, n);
  }
  const int status = pclose(stream);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ReesedBinary, ClientDrivesExperimentAndCampaignThenSigtermDrains) {
  Daemon daemon = start_reesed();
  ASSERT_GT(daemon.pid, 0);
  ASSERT_GT(daemon.port, 0) << "could not parse the listening port";

  std::string output;
  ASSERT_EQ(run_client(daemon.port, "health", &output), 0) << output;

  const std::string dir = testing::TempDir();
  const std::string espec_path = dir + "/reese_espec.json";
  {
    std::ofstream spec(espec_path);
    spec << R"({"workloads": ["gcc"], "models": ["baseline", "reese"],
                "instructions": 20000, "seed": 42})";
  }
  ASSERT_EQ(run_client(daemon.port, "submit-experiment " + espec_path,
                       &output),
            0)
      << output;
  const std::string job_id = std::string(trim(output));
  ASSERT_FALSE(job_id.empty());

  ASSERT_EQ(run_client(daemon.port, "wait " + job_id, &output), 0) << output;
  EXPECT_EQ(trim(output), "done");

  ASSERT_EQ(run_client(daemon.port, "result " + job_id + " --csv", &output),
            0)
      << output;
  sim::ExperimentSpec direct;
  direct.base = core::starting_config();
  direct.workloads = {"gcc"};
  direct.models = {sim::Model::kBaseline, sim::Model::kReese};
  direct.instructions = 20000;
  direct.seed = 42;
  direct.jobs = 1;
  EXPECT_EQ(output, sim::run_experiment(direct).csv());

  const std::string cspec_path = dir + "/reese_cspec.json";
  {
    std::ofstream spec(cspec_path);
    spec << R"({"workloads": ["gcc"], "quick": true, "instructions": 5000})";
  }
  ASSERT_EQ(run_client(daemon.port, "submit-campaign " + cspec_path, &output),
            0)
      << output;
  const std::string campaign_id = std::string(trim(output));
  ASSERT_EQ(run_client(daemon.port, "wait " + campaign_id, &output), 0);
  ASSERT_EQ(run_client(daemon.port, "result " + campaign_id, &output), 0);
  sim::CampaignSpec campaign;
  campaign.workloads = {"gcc"};
  campaign.quick = true;
  campaign.instructions = 5000;
  campaign.jobs = 1;
  EXPECT_EQ(output, sim::run_campaign(campaign).json());

  // SIGTERM must drain and exit 0.
  ASSERT_EQ(kill(daemon.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(daemon.pid, &status, 0), daemon.pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  if (daemon.stdout_stream != nullptr) fclose(daemon.stdout_stream);
}

TEST(ReesedBinary, ClientRetriesRideOutADaemonKillAndRestart) {
  // The flaky-fan-out regression: a daemon dies (SIGKILL — no drain, no
  // goodbye) and comes back on the same port. A client started during the
  // outage with --retries must bridge it instead of failing on the first
  // refused connect; without --retries that first connect is a hard error.
  Daemon first = start_reesed();
  ASSERT_GT(first.pid, 0);
  ASSERT_GT(first.port, 0);
  const int port = first.port;
  ASSERT_EQ(kill(first.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(first.pid, &status, 0), first.pid);
  if (first.stdout_stream != nullptr) fclose(first.stdout_stream);

  const std::string spec_path = testing::TempDir() + "/reese_restart.json";
  {
    std::ofstream spec(spec_path);
    spec << R"({"workloads": ["gcc"], "quick": true, "instructions": 5000})";
  }

  // No retries: the dead daemon is an immediate transport failure.
  std::string output;
  EXPECT_NE(run_client(port, "submit-campaign " + spec_path, &output), 0);

  // With retries: submit while the port is dark, restart the daemon
  // mid-backoff, and the queued attempts land on the new incarnation.
  std::string retried_id;
  int retried_rc = -1;
  std::thread client_thread([&] {
    retried_rc = run_client(
        port,
        "--retries 12 --retry-backoff-ms 40 submit-campaign " + spec_path,
        &retried_id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Daemon second = start_reesed(port);
  ASSERT_GT(second.pid, 0);
  ASSERT_EQ(second.port, port);
  client_thread.join();
  ASSERT_EQ(retried_rc, 0) << retried_id;
  const std::string job_id = std::string(trim(retried_id));
  ASSERT_FALSE(job_id.empty());

  ASSERT_EQ(run_client(port, "--retries 4 wait " + job_id, &output), 0)
      << output;
  EXPECT_EQ(trim(output), "done");
  ASSERT_EQ(run_client(port, "result " + job_id, &output), 0);
  sim::CampaignSpec direct;
  direct.workloads = {"gcc"};
  direct.quick = true;
  direct.instructions = 5000;
  direct.jobs = 1;
  EXPECT_EQ(output, sim::run_campaign(direct).json());

  ASSERT_EQ(kill(second.pid, SIGTERM), 0);
  ASSERT_EQ(waitpid(second.pid, &status, 0), second.pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  if (second.stdout_stream != nullptr) fclose(second.stdout_stream);
}

#endif  // REESE_REESED_BIN && REESE_CLIENT_BIN

}  // namespace
}  // namespace reese

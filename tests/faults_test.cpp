// Fault-injection framework tests: scheduling, coverage accounting and
// end-to-end detection through the REESE pipeline.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "faults/injector.h"
#include "workloads/workload.h"

namespace reese {
namespace {

workloads::Workload load(const std::string& name) {
  workloads::WorkloadOptions options;
  auto made = workloads::make_workload(name, options);
  EXPECT_TRUE(made.ok());
  return std::move(made).value();
}

TEST(Injector, ScheduleFiresExactSeqs) {
  faults::InjectorConfig config;
  config.schedule = {5, 10, 10'000};
  faults::Injector injector(config);
  isa::Instruction nop;
  u64 fired = 0;
  for (InstSeq seq = 1; seq <= 20'000; ++seq) {
    const core::FaultDecision decision = injector.on_instruction(seq, seq, 0x1000, nop);
    if (decision.flip_p || decision.flip_r) {
      ++fired;
      EXPECT_TRUE(seq == 5 || seq == 10 || seq == 10'000) << seq;
    }
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.injected(), 3u);
}

TEST(Injector, SkippedScheduledSeqIsPassedOver) {
  faults::InjectorConfig config;
  config.schedule = {5, 10};
  faults::Injector injector(config);
  isa::Instruction nop;
  // Seq 5 never shows up (e.g. squashed); 10 must still fire.
  const core::FaultDecision at7 = injector.on_instruction(7, 0, 0x1000, nop);
  EXPECT_FALSE(at7.flip_p || at7.flip_r);
  const core::FaultDecision at10 = injector.on_instruction(10, 0, 0x1000, nop);
  EXPECT_TRUE(at10.flip_p || at10.flip_r);
}

TEST(Injector, RateProducesApproximateCount) {
  faults::InjectorConfig config;
  config.rate = 0.01;
  faults::Injector injector(config);
  isa::Instruction nop;
  for (InstSeq seq = 1; seq <= 100'000; ++seq) {
    injector.on_instruction(seq, seq, 0x1000, nop);
  }
  EXPECT_NEAR(static_cast<double>(injector.injected()), 1000.0, 150.0);
}

TEST(Injector, MaxFaultsCap) {
  faults::InjectorConfig config;
  config.rate = 1.0;
  config.max_faults = 7;
  faults::Injector injector(config);
  isa::Instruction nop;
  for (InstSeq seq = 1; seq <= 100; ++seq) {
    injector.on_instruction(seq, seq, 0x1000, nop);
  }
  EXPECT_EQ(injector.injected(), 7u);
}

TEST(Injector, TargetSelection) {
  isa::Instruction nop;
  faults::InjectorConfig p_config;
  p_config.rate = 1.0;
  p_config.target = faults::FaultTarget::kPResult;
  faults::Injector p_injector(p_config);
  const core::FaultDecision p_decision = p_injector.on_instruction(1, 0, 0x1000, nop);
  EXPECT_TRUE(p_decision.flip_p);
  EXPECT_FALSE(p_decision.flip_r);

  faults::InjectorConfig r_config;
  r_config.rate = 1.0;
  r_config.target = faults::FaultTarget::kRResult;
  faults::Injector r_injector(r_config);
  const core::FaultDecision r_decision = r_injector.on_instruction(1, 0, 0x1000, nop);
  EXPECT_FALSE(r_decision.flip_p);
  EXPECT_TRUE(r_decision.flip_r);
}

TEST(Injector, CoverageAccounting) {
  faults::InjectorConfig config;
  config.schedule = {1, 2, 3, 4};
  faults::Injector injector(config);
  isa::Instruction nop;
  for (InstSeq seq = 1; seq <= 4; ++seq) injector.on_instruction(seq, 10, 0x1000, nop);
  injector.on_detected(1, 10, 30);
  injector.on_detected(2, 10, 50);
  injector.on_undetected(3);
  EXPECT_EQ(injector.detected(), 2u);
  EXPECT_EQ(injector.undetected(), 1u);
  EXPECT_NEAR(injector.coverage(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(injector.latency().count(), 2u);
  EXPECT_DOUBLE_EQ(injector.latency().mean(), 30.0);
}

TEST(Injector, Deterministic) {
  for (int run = 0; run < 2; ++run) {
    faults::InjectorConfig config;
    config.rate = 0.1;
    config.seed = 99;
    faults::Injector a(config);
    faults::Injector b(config);
    isa::Instruction nop;
    for (InstSeq seq = 1; seq <= 1000; ++seq) {
      const core::FaultDecision da = a.on_instruction(seq, 0, 0x1000, nop);
      const core::FaultDecision db = b.on_instruction(seq, 0, 0x1000, nop);
      ASSERT_EQ(da.flip_p, db.flip_p);
      ASSERT_EQ(da.flip_r, db.flip_r);
      ASSERT_EQ(da.bit, db.bit);
    }
  }
}

// --- end-to-end through the pipeline ------------------------------------------

namespace {
/// Records the sequence numbers of instructions that reach the commit path
/// (sequence numbering includes squashed wrong-path instructions, so a
/// valid fault schedule must be derived from a recording run).
class SeqRecorder final : public core::FaultHook {
 public:
  core::FaultDecision on_instruction(InstSeq seq, Cycle, Addr,
                                     const isa::Instruction&) override {
    seqs.push_back(seq);
    return {};
  }
  void on_detected(InstSeq, Cycle, Cycle) override {}
  void on_undetected(InstSeq) override {}
  std::vector<InstSeq> seqs;
};
}  // namespace

TEST(FaultPipeline, ReeseDetectsScheduledFaults) {
  // Phase 1: find sequence numbers that actually commit.
  SeqRecorder recorder;
  {
    const workloads::Workload workload = load("go");
    core::Pipeline pipeline(workload.program,
                            core::with_reese(core::starting_config()));
    pipeline.set_fault_hook(&recorder);
    pipeline.run(20'000, 2'000'000);
  }
  ASSERT_GT(recorder.seqs.size(), 10'000u);

  // Phase 2: schedule faults on five committed instructions; the run is
  // deterministic, so all five must be injected and detected.
  faults::InjectorConfig config;
  config.schedule = {recorder.seqs[100], recorder.seqs[500],
                     recorder.seqs[1000], recorder.seqs[5000],
                     recorder.seqs[9000]};
  faults::Injector injector(config);
  const workloads::Workload workload = load("go");
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.set_fault_hook(&injector);
  pipeline.run(20'000, 2'000'000);
  EXPECT_EQ(injector.injected(), 5u);
  EXPECT_EQ(injector.detected(), 5u);
  EXPECT_EQ(injector.undetected(), 0u);
  EXPECT_EQ(pipeline.stats().errors_detected, 5u);
}

TEST(FaultPipeline, BaselineDetectsNothing) {
  const workloads::Workload workload = load("go");
  faults::InjectorConfig config;
  config.rate = 1e-3;
  faults::Injector injector(config);
  core::Pipeline pipeline(workload.program, core::starting_config());
  pipeline.set_fault_hook(&injector);
  pipeline.run(20'000, 2'000'000);
  EXPECT_GT(injector.injected(), 5u);
  EXPECT_EQ(injector.detected(), 0u);
  EXPECT_EQ(injector.undetected(), injector.injected());
}

TEST(FaultPipeline, DetectionLatencyIsPlausible) {
  const workloads::Workload workload = load("li");
  faults::InjectorConfig config;
  config.rate = 1e-3;
  faults::Injector injector(config);
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.set_fault_hook(&injector);
  pipeline.run(50'000, 5'000'000);
  ASSERT_GT(injector.detected(), 10u);
  // Detection must take at least one cycle and at most a few hundred
  // (bounded by queue traversal + drain).
  EXPECT_GE(injector.latency().min(), 1u);
  EXPECT_LT(injector.latency().mean(), 300.0);
}

TEST(FaultPipeline, ErrorRecoveryPenaltyCharged) {
  const workloads::Workload clean_workload = load("ijpeg");
  core::Pipeline clean(clean_workload.program,
                       core::with_reese(core::starting_config()));
  clean.run(20'000, 2'000'000);

  const workloads::Workload faulty_workload = load("ijpeg");
  faults::InjectorConfig config;
  config.rate = 5e-3;  // heavy fault pressure
  faults::Injector injector(config);
  core::CoreConfig reese_config = core::with_reese(core::starting_config());
  reese_config.reese.error_recovery_penalty = 50;
  core::Pipeline faulty(faulty_workload.program, reese_config);
  faulty.set_fault_hook(&injector);
  faulty.run(20'000, 4'000'000);

  EXPECT_GT(injector.detected(), 50u);
  EXPECT_LT(faulty.stats().ipc(), clean.stats().ipc());
}

TEST(FaultPipeline, EveryOpcodeClassDetectable) {
  // A program exercising ALU, mul, div, load, store, branch and jump paths;
  // inject densely and require 100% coverage.
  const workloads::Workload workload = load("gcc");
  faults::InjectorConfig config;
  config.rate = 5e-3;
  faults::Injector injector(config);
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  pipeline.set_fault_hook(&injector);
  pipeline.run(50'000, 5'000'000);
  ASSERT_GT(injector.detected() + injector.undetected(), 100u);
  EXPECT_EQ(injector.undetected(), 0u);
}

}  // namespace
}  // namespace reese

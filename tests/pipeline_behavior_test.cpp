// Microarchitectural behaviour tests for the baseline pipeline: the timing
// model must respond to ILP, dependences, branch predictability, window
// size, memory ports and cache locality the way a real out-of-order core
// does. These are shape assertions, not golden numbers.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "workloads/workload.h"

namespace reese {
namespace {

double workload_ipc(const std::string& name, const core::CoreConfig& config,
                    u64 instructions = 60'000) {
  workloads::WorkloadOptions options;
  auto made = workloads::make_workload(name, options);
  EXPECT_TRUE(made.ok());
  const workloads::Workload workload = std::move(made).value();
  core::Pipeline pipeline(workload.program, config);
  EXPECT_EQ(pipeline.run(instructions, 64 * instructions),
            core::StopReason::kCommitTarget);
  return pipeline.stats().ipc();
}

TEST(PipelineBehavior, IlpBeatsDependenceChain) {
  const core::CoreConfig config = core::starting_config();
  const double ilp = workload_ipc("ilp_chain", config);
  const double dep = workload_ipc("dep_chain", config);
  EXPECT_GT(ilp, 1.5 * dep) << "independent chains must overlap";
  EXPECT_LT(dep, 2.0) << "a serial chain cannot sustain high IPC";
}

TEST(PipelineBehavior, BranchTortureHurts) {
  const core::CoreConfig config = core::starting_config();
  const double predictable = workload_ipc("ilp_chain", config);
  const double torture = workload_ipc("branch_torture", config);
  EXPECT_LT(torture, 0.6 * predictable);
  EXPECT_LT(torture, 1.3) << "random branches should gate IPC hard";
}

TEST(PipelineBehavior, BiggerWindowNeverHurtsMuch) {
  core::CoreConfig small = core::starting_config();
  core::CoreConfig big = core::starting_config();
  big.ruu_size = 64;
  big.lsq_size = 32;
  for (const char* name : {"ijpeg", "li", "perl"}) {
    const double ipc_small = workload_ipc(name, small);
    const double ipc_big = workload_ipc(name, big);
    EXPECT_GE(ipc_big, 0.98 * ipc_small) << name;
  }
}

TEST(PipelineBehavior, PointerChaseIsLatencyBound) {
  const core::CoreConfig config = core::starting_config();
  const double chase = workload_ipc("pointer_chase", config, 30'000);
  EXPECT_LT(chase, 1.0) << "serial dependent loads bound by cache latency";
}

TEST(PipelineBehavior, MorePortsHelpMemStream) {
  core::CoreConfig two = core::starting_config();
  core::CoreConfig four = core::starting_config();
  four.mem_port_count = 4;
  const double ipc2 = workload_ipc("mem_stream", two);
  const double ipc4 = workload_ipc("mem_stream", four);
  EXPECT_GE(ipc4, ipc2);
}

TEST(PipelineBehavior, DivHeavySerializesOnUnpipelinedUnit) {
  const core::CoreConfig config = core::starting_config();
  const double ipc = workload_ipc("div_heavy", config, 20'000);
  EXPECT_LT(ipc, 0.6);
}

TEST(PipelineBehavior, BetterPredictorGivesBetterOrEqualIpc) {
  core::CoreConfig nottaken = core::starting_config();
  nottaken.predictor = branch::PredictorKind::kNotTaken;
  core::CoreConfig gshare = core::starting_config();
  for (const char* name : {"gcc", "perl", "li"}) {
    const double ipc_static = workload_ipc(name, nottaken);
    const double ipc_gshare = workload_ipc(name, gshare);
    EXPECT_GT(ipc_gshare, ipc_static) << name;
  }
}

TEST(PipelineBehavior, MispredictStatsAreRecorded) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("branch_torture", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  pipeline.run(40'000, 4'000'000);
  const core::CoreStats& stats = pipeline.stats();
  EXPECT_GT(stats.cond_branches_resolved, 1000u);
  // Half the dynamic branches are random-outcome (the loop branch is
  // predictable), so the overall rate sits near 25%.
  EXPECT_GT(stats.mispredict_rate(), 0.18);
  EXPECT_LT(stats.mispredict_rate(), 0.65);
  EXPECT_GT(stats.wrongpath_dispatched, 0u);
}

TEST(PipelineBehavior, PredictableLoopHasLowMispredicts) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("ijpeg", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  pipeline.run(60'000, 4'000'000);
  EXPECT_LT(pipeline.stats().mispredict_rate(), 0.05);
}

TEST(PipelineBehavior, WrongPathStoresDoNotCorruptArchState) {
  // A mispredictable branch guards a store; wrong-path execution must not
  // leak into memory. The ISS is the oracle.
  constexpr char kSource[] = R"(
main:
  la   s0, flags
  la   s1, data
  li   s2, 100
  li   s3, 0          # checksum
loop:
  lbu  t0, 0(s0)
  beqz t0, skip
  sd   s2, 0(s1)      # only when flag set
  ld   t1, 0(s1)
  add  s3, s3, t1
skip:
  addi s0, s0, 1
  addi s2, s2, -1
  bnez s2, loop
  out  s3
  halt
  .data
flags: .byte 1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1
  .space 84
  .align 8
data:  .space 8
)";
    auto assembled = isa::assemble(kSource);
  ASSERT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();

  isa::Iss iss(program);
  const isa::IssResult golden = iss.run(100'000);
  ASSERT_TRUE(golden.halted);

  core::Pipeline pipeline(program, core::starting_config());
  ASSERT_EQ(pipeline.run(100'000, 1'000'000), core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.memory().content_hash(), iss.memory().content_hash());
}

TEST(PipelineBehavior, RunIsRestartable) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("li", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  ASSERT_EQ(pipeline.run(10'000, 1'000'000), core::StopReason::kCommitTarget);
  const Cycle cycles_at_10k = pipeline.stats().cycles;
  ASSERT_EQ(pipeline.run(20'000, 1'000'000), core::StopReason::kCommitTarget);
  EXPECT_GT(pipeline.stats().cycles, cycles_at_10k);
  EXPECT_GE(pipeline.stats().committed, 20'000u);
}

TEST(PipelineBehavior, CycleLimitStops) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("li", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  EXPECT_EQ(pipeline.run(~u64{0} >> 1, 1000), core::StopReason::kCycleLimit);
  EXPECT_LE(pipeline.stats().cycles, 1001u);
}

TEST(PipelineBehavior, BadPcReported) {
  auto assembled = isa::assemble("main:\n  jr t0\n  halt\n");  // t0 = 0
  ASSERT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();
  core::Pipeline pipeline(program, core::starting_config());
  EXPECT_EQ(pipeline.run(1000, 100'000), core::StopReason::kBadPc);
}

TEST(PipelineBehavior, IcacheMissesShowUpForBigCode) {
  // A program whose text exceeds L1I: generate many blocks of straight-line
  // code joined by jumps, looping forever.
  std::string source = "main:\n";
  for (int block = 0; block < 3200; ++block) {
    source += "  addi t0, t0, 1\n  addi t1, t1, 2\n  addi t2, t2, 3\n";
  }
  source += "  j main\n";
  auto assembled = isa::assemble(source);
  ASSERT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();
  ASSERT_GT(program.code.size() * 4, 32u * 1024u);  // bigger than L1I

  core::Pipeline pipeline(program, core::starting_config());
  pipeline.run(50'000, 5'000'000);
  EXPECT_GT(pipeline.hierarchy().il1().stats().misses, 100u);
  EXPECT_GT(pipeline.stats().icache_stall_cycles, 100u);
}

TEST(PipelineBehavior, StoreLoadForwardingBeatsCacheRoundTrip) {
  // Tight store-then-load-same-address loop: forwarding keeps the dependent
  // load at 1 cycle. Compare against a version with unrelated addresses.
  constexpr char kForwarding[] = R"(
main:
  la   s0, buf
  li   t0, 5000
loop:
  sd   t0, 0(s0)
  ld   t1, 0(s0)
  add  t2, t2, t1
  addi t0, t0, -1
  bnez t0, loop
  out  t2
  halt
  .data
  .align 8
buf: .space 64
)";
  auto assembled = isa::assemble(kForwarding);
  ASSERT_TRUE(assembled.ok());
  const isa::Program program = std::move(assembled).value();
  core::Pipeline pipeline(program, core::starting_config());
  ASSERT_EQ(pipeline.run(1'000'000, 10'000'000), core::StopReason::kHalted);
  // Forwarded loads never touch the D-cache; only the store commits do.
  const auto& dl1 = pipeline.hierarchy().dl1().stats();
  EXPECT_LT(dl1.read_accesses, 100u);
  EXPECT_GT(dl1.write_accesses, 4000u);
}

TEST(PipelineBehavior, OccupancyStatsPopulated) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("li", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  pipeline.run(20'000, 2'000'000);
  const core::CoreStats& stats = pipeline.stats();
  EXPECT_GT(stats.ruu_occupancy.mean(), 0.0);
  EXPECT_LE(stats.ruu_occupancy.max(), 16.0);
  EXPECT_LE(stats.lsq_occupancy.max(), 8.0);
  EXPECT_LE(stats.ifq_occupancy.max(), 16.0);
  EXPECT_GT(stats.issue_per_cycle.mean(), 0.0);
}

TEST(PipelineBehavior, ReportMentionsKeySections) {
  workloads::WorkloadOptions options;
  const workloads::Workload workload =
      std::move(workloads::make_workload("go", options)).value();
  core::Pipeline pipeline(workload.program, core::starting_config());
  pipeline.run(5'000, 1'000'000);
  const std::string report = pipeline.report();
  EXPECT_NE(report.find("IPC"), std::string::npos);
  EXPECT_NE(report.find("branches"), std::string::npos);
  EXPECT_NE(report.find("dl1"), std::string::npos);
}

// Architectural equivalence must hold under every predictor (speculation
// repair paths differ wildly between them).
class PredictorEquivalenceTest
    : public ::testing::TestWithParam<branch::PredictorKind> {};

TEST_P(PredictorEquivalenceTest, ArchStateMatchesIss) {
  workloads::WorkloadOptions options;
  options.iterations = 4;
  const workloads::Workload workload =
      std::move(workloads::make_workload("gcc", options)).value();

  isa::Iss iss(workload.program);
  const isa::IssResult golden = iss.run(2'000'000);
  ASSERT_TRUE(golden.halted);

  core::CoreConfig config = core::starting_config();
  config.predictor = GetParam();
  core::Pipeline pipeline(workload.program, config);
  ASSERT_EQ(pipeline.run(2'000'000, 64'000'000), core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.stats().committed, golden.executed_instructions);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, PredictorEquivalenceTest,
    ::testing::Values(branch::PredictorKind::kNotTaken,
                      branch::PredictorKind::kTaken,
                      branch::PredictorKind::kBtfn,
                      branch::PredictorKind::kBimodal,
                      branch::PredictorKind::kGshare,
                      branch::PredictorKind::kLocal,
                      branch::PredictorKind::kTournament),
    [](const ::testing::TestParamInfo<branch::PredictorKind>& info) {
      return branch::predictor_kind_name(info.param);
    });

}  // namespace
}  // namespace reese

// Tests for the Franklin dual-execution scheme ([24]) — the related-work
// baseline the paper compares REESE against.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "faults/injector.h"
#include "isa/iss.h"
#include "workloads/workload.h"

namespace reese {
namespace {

core::CoreConfig franklin_config(u32 spare_alus = 0) {
  core::CoreConfig config = core::with_reese(core::starting_config(), spare_alus);
  config.reese.scheme = core::RedundancyScheme::kFranklin;
  return config;
}

workloads::Workload load(const std::string& name, u64 iterations = 0) {
  workloads::WorkloadOptions options;
  options.iterations = iterations;
  auto made = workloads::make_workload(name, options);
  EXPECT_TRUE(made.ok());
  return std::move(made).value();
}

class FranklinWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FranklinWorkloadTest, ArchStateMatchesIss) {
  const workloads::Workload workload = load(GetParam(), /*iterations=*/6);
  isa::Iss iss(workload.program);
  const isa::IssResult golden = iss.run(3'000'000);
  ASSERT_TRUE(golden.halted);

  core::Pipeline pipeline(workload.program, franklin_config());
  ASSERT_EQ(pipeline.run(3'000'000, 96'000'000), core::StopReason::kHalted);
  EXPECT_EQ(pipeline.arch_state().out_hash, golden.out_hash);
  EXPECT_EQ(pipeline.stats().committed, golden.executed_instructions);
  EXPECT_EQ(pipeline.stats().comparisons, pipeline.stats().committed);
  EXPECT_EQ(pipeline.stats().errors_detected, 0u);
}

INSTANTIATE_TEST_SUITE_P(SpecLike, FranklinWorkloadTest,
                         ::testing::ValuesIn(workloads::spec_like_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Franklin, EveryInstructionExecutedTwice) {
  const workloads::Workload workload = load("go");
  core::Pipeline pipeline(workload.program, franklin_config());
  pipeline.run(30'000, 6'000'000);
  const core::CoreStats& stats = pipeline.stats();
  EXPECT_GE(stats.comparisons, stats.committed);
  EXPECT_EQ(stats.committed_r, stats.comparisons);
  EXPECT_GE(stats.issued_r, stats.comparisons);
}

TEST(Franklin, SlowerThanBaseline) {
  const workloads::Workload wb = load("li");
  core::Pipeline baseline(wb.program, core::starting_config());
  baseline.run(30'000, 6'000'000);

  const workloads::Workload wf = load("li");
  core::Pipeline franklin(wf.program, franklin_config());
  franklin.run(30'000, 6'000'000);

  EXPECT_LT(franklin.stats().ipc(), baseline.stats().ipc());
}

TEST(Franklin, ReeseBeatsFranklinOnSmallWindows) {
  // The paper's pitch: the R-queue releases completed instructions from
  // the RUU, while Franklin's duplication holds window slots twice as
  // long. At RUU=16 REESE should win on average across the benchmarks.
  double reese_sum = 0.0;
  double franklin_sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    const workloads::Workload wr = load(name);
    core::Pipeline reese(wr.program,
                         core::with_reese(core::starting_config()));
    reese.run(20'000, 4'000'000);
    reese_sum += reese.stats().ipc();

    const workloads::Workload wf = load(name);
    core::Pipeline franklin(wf.program, franklin_config());
    franklin.run(20'000, 4'000'000);
    franklin_sum += franklin.stats().ipc();
  }
  EXPECT_GT(reese_sum, franklin_sum);
}

TEST(Franklin, SpareAlusHelp) {
  const workloads::Workload w0 = load("li");
  core::Pipeline none(w0.program, franklin_config(0));
  none.run(30'000, 6'000'000);

  const workloads::Workload w2 = load("li");
  core::Pipeline two(w2.program, franklin_config(2));
  two.run(30'000, 6'000'000);

  EXPECT_GT(two.stats().ipc(), none.stats().ipc());
}

TEST(Franklin, DetectsInjectedFaults) {
  const workloads::Workload workload = load("gcc");
  faults::InjectorConfig config;
  config.rate = 2e-3;
  faults::Injector injector(config);
  core::Pipeline pipeline(workload.program, franklin_config());
  pipeline.set_fault_hook(&injector);
  pipeline.run(40'000, 8'000'000);
  ASSERT_GT(injector.injected(), 30u);
  EXPECT_EQ(injector.detected(), injector.injected());
  EXPECT_EQ(injector.undetected(), 0u);
}

TEST(Franklin, SeparationIsShorterThanReese) {
  // Franklin re-executes in-window, so the P->R separation — the paper's
  // Δt guarantee — is much shorter than REESE's queue traversal provides.
  const workloads::Workload wf = load("perl");
  core::Pipeline franklin(wf.program, franklin_config());
  franklin.run(30'000, 6'000'000);

  const workloads::Workload wr = load("perl");
  core::Pipeline reese(wr.program, core::with_reese(core::starting_config()));
  reese.run(30'000, 6'000'000);

  EXPECT_LT(franklin.stats().separation.mean(),
            reese.stats().separation.mean());
}

TEST(Franklin, DeadlockFreeTinyConfig) {
  const workloads::Workload workload = load("li");
  core::CoreConfig config = franklin_config();
  config.ruu_size = 2;
  config.lsq_size = 1;
  config.mem_port_count = 1;
  config.int_alu_count = 1;
  core::Pipeline pipeline(workload.program, config);
  EXPECT_EQ(pipeline.run(3'000, 3'000'000), core::StopReason::kCommitTarget);
}

}  // namespace
}  // namespace reese
